"""Resource-degradation chain: publish fallbacks, ENOSPC rotation, leaks."""

import errno
import os
from pathlib import Path

import pytest

from repro.dram.image import MemoryImage, SharedDumpBuffer
from repro.resilience.checkpoint import CheckpointJournal, JournalHeader, dump_fingerprint
from repro.resilience.errors import CheckpointStorageError, DumpFormatError
from repro.resilience.resources import (
    BACKEND_FILE,
    BACKEND_SERIAL,
    BACKEND_SHM,
    ResourcePolicy,
    allocate_slots,
    publish_bytes,
    resolve_ref,
)

PAYLOAD = bytes(range(256)) * 16

#: The no-/dev/shm CI smoke exports REPRO_DISABLE_SHM=1 and reruns this
#: module; tests that assert the shm-preferred *default* are meaningless
#: there and skip rather than fight the override they exist to exercise.
requires_shm = pytest.mark.skipif(
    os.environ.get("REPRO_DISABLE_SHM") == "1",
    reason="REPRO_DISABLE_SHM set: the shm rung is deliberately disabled",
)


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover — host without tmpfs
        return set()


# -------------------------------------------------------------- degradation


@requires_shm
def test_default_chain_prefers_shm():
    with publish_bytes(PAYLOAD) as published:
        assert published.backend == BACKEND_SHM
        assert published.ref[0] == BACKEND_SHM
        holder, view = resolve_ref(published.ref)
        try:
            assert bytes(view) == PAYLOAD
        finally:
            view.release()
            holder.close()


def test_shm_denied_falls_back_to_file(tmp_path):
    policy = ResourcePolicy(allow_shm=False, file_directory=str(tmp_path))
    events: list[str] = []
    with publish_bytes(PAYLOAD, policy, on_event=events.append) as published:
        assert published.backend == BACKEND_FILE
        kind, name, length = published.ref
        assert kind == BACKEND_FILE
        assert Path(name).parent == tmp_path
        assert length == len(PAYLOAD)
        holder, view = resolve_ref(published.ref)
        try:
            assert bytes(view) == PAYLOAD
        finally:
            holder.close()
    assert not Path(name).exists()  # unlink removed the segment


def test_everything_denied_degrades_to_serial():
    policy = ResourcePolicy(allow_shm=False, allow_file=False)
    published = publish_bytes(PAYLOAD, policy)
    assert published.backend == BACKEND_SERIAL
    holder, view = resolve_ref(published.ref)
    assert holder is None
    assert bytes(view) == PAYLOAD
    published.unlink()  # serial refs hold nothing; must not raise


def test_allocate_slots_has_no_serial_fallback():
    policy = ResourcePolicy(allow_shm=False, allow_file=False)
    assert allocate_slots(64, policy) is None


def test_allocate_slots_is_zero_filled(tmp_path):
    policy = ResourcePolicy(allow_shm=False, file_directory=str(tmp_path))
    published = allocate_slots(64, policy)
    assert published is not None
    try:
        assert bytes(published.view) == bytes(64)
    finally:
        published.unlink()


def test_resolve_ref_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="unknown buffer reference"):
        resolve_ref(("carrier-pigeon", "x", 1))


def test_policy_env_overrides(monkeypatch):
    monkeypatch.delenv("REPRO_DISABLE_SHM", raising=False)
    monkeypatch.delenv("REPRO_DISABLE_FILE_BUFFERS", raising=False)
    assert ResourcePolicy.from_env() == ResourcePolicy()
    monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
    assert not ResourcePolicy.from_env().allow_shm
    monkeypatch.setenv("REPRO_DISABLE_FILE_BUFFERS", "1")
    policy = ResourcePolicy.from_env()
    assert not policy.allow_shm and not policy.allow_file


def test_disable_shm_env_reroutes_publication(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
    before = _shm_entries()
    with publish_bytes(PAYLOAD) as published:
        assert published.backend == BACKEND_FILE
        assert _shm_entries() == before  # nothing touched tmpfs


# -------------------------------------------------------------- leak checks


@requires_shm
def test_publish_unlink_leaves_no_shm_segment():
    before = _shm_entries()
    published = publish_bytes(PAYLOAD)
    assert published.backend == BACKEND_SHM
    assert _shm_entries() != before
    published.unlink()
    assert _shm_entries() == before


def test_attach_shared_error_path_leaks_nothing():
    """A failed attach (wrong length) must close its mapping and unlink
    must still reclaim the segment — the satellite leak guarantee."""
    before = _shm_entries()
    buffer = SharedDumpBuffer.create(PAYLOAD)
    try:
        with pytest.raises(DumpFormatError):
            SharedDumpBuffer.attach(buffer.name, len(PAYLOAD) * 100)
        with pytest.raises(DumpFormatError):
            with MemoryImage.attach_shared(buffer.name, len(PAYLOAD) * 100):
                pass  # pragma: no cover — attach fails before the body
    finally:
        buffer.unlink()
    assert _shm_entries() == before


def test_attach_shared_context_manager_round_trip():
    before = _shm_entries()
    buffer = SharedDumpBuffer.create(PAYLOAD)
    try:
        with MemoryImage.attach_shared(buffer.name, len(PAYLOAD)) as image:
            assert bytes(image.data) == PAYLOAD
    finally:
        buffer.unlink()
    assert _shm_entries() == before


# ---------------------------------------------------------- ENOSPC rotation


def _journal(tmp_path, fallback=None):
    header = JournalHeader(
        dump_len=64, dump_sha256=dump_fingerprint(b"\0" * 64), key_bits=256,
        n_shards=1, overlap_bytes=0,
    )
    journal, completed = CheckpointJournal.open(
        tmp_path / "scan.jsonl", header, fallback_directory=fallback
    )
    assert completed == {}
    return journal


def _fail_next_appends(monkeypatch, journal, failures: int):
    """Make the next ``failures`` appends die with ENOSPC."""
    real_append = CheckpointJournal._append
    state = {"left": failures}

    def flaky(self, line):
        if state["left"] > 0:
            state["left"] -= 1
            raise OSError(errno.ENOSPC, "No space left on device")
        real_append(self, line)

    monkeypatch.setattr(CheckpointJournal, "_append", flaky)


def test_enospc_rotates_to_fallback_and_keeps_journaling(tmp_path, monkeypatch):
    fallback = tmp_path / "fallback"
    fallback.mkdir()
    journal = _journal(tmp_path, fallback=fallback)
    journal.record(0, [])
    _fail_next_appends(monkeypatch, journal, failures=1)
    journal.record(4096, [])  # first append fails, rotation retries

    assert journal.rotated
    assert journal.rotated_from == tmp_path / "scan.jsonl"
    assert journal.path == fallback / "scan.jsonl.fallback"
    # The fallback carries the earlier records plus the retried one.
    lines = journal.path.read_text().splitlines()
    assert len(lines) == 3  # header + shard 0 + shard 4096
    journal.record(8192, [])  # subsequent appends stay on the fallback
    assert len(journal.path.read_text().splitlines()) == 4


def test_enospc_on_both_paths_raises_typed_error(tmp_path, monkeypatch):
    journal = _journal(tmp_path, fallback=tmp_path / "also-full")
    (tmp_path / "also-full").mkdir()
    journal.record(0, [])
    _fail_next_appends(monkeypatch, journal, failures=2)
    with pytest.raises(CheckpointStorageError):
        journal.record(4096, [])


def test_rotation_failure_itself_raises_typed_error(tmp_path, monkeypatch):
    journal = _journal(tmp_path, fallback=tmp_path / "missing-dir")
    journal.record(0, [])
    _fail_next_appends(monkeypatch, journal, failures=1)
    # The fallback directory does not exist, so the rotation copy fails.
    with pytest.raises(CheckpointStorageError, match="rotation"):
        journal.record(4096, [])
