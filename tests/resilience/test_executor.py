"""ResilientShardRunner behaviour under crashes, hangs, and dead workers.

Worker functions live at module level so the process pool can pickle
them by reference (fork start method).  Pool tests use short timeouts
and tiny payloads — each asserts policy behaviour, not throughput.
"""

import os
import time

from repro.resilience.executor import (
    STATUS_OK,
    STATUS_QUARANTINED,
    ResilientShardRunner,
    RunLedger,
    ShardOutcome,
)
from repro.resilience.retry import RetryPolicy

FAST = RetryPolicy(max_attempts=3, base_delay_s=0.001, shard_timeout_s=5.0, seed=1)


def worker_double(payload, shard_offset, attempt, in_subprocess):
    return payload * 2


def worker_crash_first_attempts(payload, shard_offset, attempt, in_subprocess):
    # payload = (value, crash_below): crash on attempts < crash_below.
    value, crash_below = payload
    if attempt < crash_below:
        raise RuntimeError(f"scripted crash on attempt {attempt}")
    return value


def worker_always_crash(payload, shard_offset, attempt, in_subprocess):
    raise RuntimeError("this shard never succeeds")


def worker_die_once(payload, shard_offset, attempt, in_subprocess):
    # Abrupt process death (not an exception) on the first attempt only
    # — and only in a real subprocess, never in the orchestrator.
    if attempt == 1 and in_subprocess:
        os._exit(17)
    return payload


def worker_always_die(payload, shard_offset, attempt, in_subprocess):
    if in_subprocess:
        os._exit(17)
    return payload


def worker_hang_once(payload, shard_offset, attempt, in_subprocess):
    if attempt == 1 and in_subprocess:
        time.sleep(60.0)
    return payload


class TestSerialMode:
    def test_all_ok(self):
        runner = ResilientShardRunner(worker_double, policy=FAST, workers=1)
        ledger = runner.run({0: 3, 64: 4})
        assert [o.status for o in ledger.outcomes.values()] == [STATUS_OK, STATUS_OK]
        assert ledger.outcomes[0].result == 6
        assert ledger.outcomes[64].result == 8

    def test_transient_crash_is_retried(self):
        runner = ResilientShardRunner(
            worker_crash_first_attempts, policy=FAST, workers=1, sleep=lambda s: None
        )
        ledger = runner.run({0: ("fine", 3)})
        outcome = ledger.outcomes[0]
        assert outcome.status == STATUS_OK
        assert outcome.result == "fine"
        assert outcome.attempts == 3
        assert len(outcome.errors) == 2  # two failed attempts on record

    def test_persistent_crash_quarantines(self):
        events = []
        runner = ResilientShardRunner(
            worker_always_crash, policy=FAST, workers=1,
            on_event=events.append, sleep=lambda s: None,
        )
        ledger = runner.run({0: None, 64: None})
        assert all(o.status == STATUS_QUARANTINED for o in ledger.outcomes.values())
        assert all(o.attempts == FAST.max_attempts for o in ledger.outcomes.values())
        assert any("quarantined" in e for e in events)

    def test_on_result_fires_per_shard(self):
        seen = []
        runner = ResilientShardRunner(
            worker_double, policy=FAST, workers=1,
            on_result=lambda offset, result: seen.append((offset, result)),
        )
        runner.run({0: 1, 64: 2, 128: 3})
        assert sorted(seen) == [(0, 2), (64, 4), (128, 6)]


class TestPoolMode:
    def test_all_ok_across_processes(self):
        runner = ResilientShardRunner(worker_double, policy=FAST, workers=2)
        ledger = runner.run({offset: offset for offset in (0, 64, 128, 192)})
        assert len(ledger.completed) == 4
        assert ledger.outcomes[128].result == 256
        assert ledger.pool_rebuilds == 0

    def test_crash_retries_in_pool(self):
        runner = ResilientShardRunner(
            worker_crash_first_attempts, policy=FAST, workers=2, sleep=lambda s: None
        )
        ledger = runner.run({0: ("a", 2), 64: ("b", 1)})
        assert ledger.outcomes[0].status == STATUS_OK
        assert ledger.outcomes[0].attempts == 2
        assert ledger.outcomes[64].attempts == 1

    def test_persistent_crash_quarantines_in_pool(self):
        ledger = ResilientShardRunner(
            worker_always_crash, policy=FAST, workers=2, sleep=lambda s: None
        ).run({0: None})
        assert ledger.outcomes[0].status == STATUS_QUARANTINED
        assert ledger.outcomes[0].attempts == FAST.max_attempts

    def test_dead_worker_triggers_rebuild_then_succeeds(self):
        events = []
        runner = ResilientShardRunner(
            worker_die_once, policy=FAST, workers=2,
            on_event=events.append, sleep=lambda s: None,
        )
        ledger = runner.run({0: "alpha", 64: "beta"})
        assert ledger.pool_rebuilds >= 1
        assert {o.result for o in ledger.completed} == {"alpha", "beta"}
        assert any("rebuilding" in e for e in events)

    def test_dead_worker_does_not_quarantine_innocents(self):
        # The killer takes the pool down with it; sibling shards must
        # not be charged attempts for the collateral BrokenProcessPool.
        runner = ResilientShardRunner(
            worker_die_once, policy=RetryPolicy(max_attempts=2, base_delay_s=0.001, seed=1),
            workers=2, sleep=lambda s: None,
        )
        ledger = runner.run({offset: offset for offset in range(0, 64 * 6, 64)})
        assert not ledger.quarantined
        assert len(ledger.completed) == 6

    def test_unkillable_worker_degrades_to_serial(self):
        # Every subprocess attempt dies; after max_pool_rebuilds the
        # runner falls back to in-process execution, where the worker
        # behaves (in_subprocess=False) and the scan still finishes.
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.001, max_pool_rebuilds=1, seed=1
        )
        runner = ResilientShardRunner(
            worker_always_die, policy=policy, workers=2, sleep=lambda s: None
        )
        ledger = runner.run({0: "x", 64: "y"})
        assert ledger.degraded_to_serial
        assert {o.result for o in ledger.completed} == {"x", "y"}

    def test_hung_worker_times_out_and_retries(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.001, shard_timeout_s=3.0, seed=1
        )
        events = []
        runner = ResilientShardRunner(
            worker_hang_once, policy=policy, workers=2,
            on_event=events.append, sleep=lambda s: None,
        )
        start = time.monotonic()
        ledger = runner.run({0: "slow", 64: "quick"})
        elapsed = time.monotonic() - start
        assert ledger.outcomes[0].status == STATUS_OK  # retry succeeded
        assert any("ShardTimeoutError" in e for o in ledger.outcomes.values()
                   for e in o.errors)
        assert elapsed < 30.0  # nobody waited for the 60 s sleeper


class TestLedger:
    def test_summary_mentions_everything(self):
        ledger = RunLedger(
            outcomes={
                0: ShardOutcome(0, STATUS_OK, attempts=1),
                64: ShardOutcome(64, STATUS_QUARANTINED, attempts=3),
            },
            pool_rebuilds=2,
            degraded_to_serial=True,
        )
        text = ledger.summary()
        assert "1/2 shards ok" in text
        assert "1 quarantined" in text
        assert "2 pool rebuilds" in text
        assert "serial" in text
