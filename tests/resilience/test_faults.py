"""The fault-injection harness must be deterministic and self-limiting."""

import pytest

from repro.resilience.faults import (
    FAULT_KINDS,
    PERMANENT,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor")

    def test_transient_fires_then_clears(self):
        spec = FaultSpec(kind="crash", first_attempts=2)
        assert spec.fires_on(1)
        assert spec.fires_on(2)
        assert not spec.fires_on(3)

    def test_permanent_always_fires(self):
        spec = FaultSpec(kind="crash", first_attempts=PERMANENT)
        assert spec.fires_on(1) and spec.fires_on(50)


class TestFaultPlan:
    def test_clean_shard_passes_through(self):
        plan = FaultPlan(faults=((64, FaultSpec(kind="crash")),))
        data = b"\xaa" * 128
        assert plan.apply(0, 1, data) == data

    def test_crash_raises_injected_fault(self):
        plan = FaultPlan(faults=((0, FaultSpec(kind="crash")),))
        with pytest.raises(InjectedFault):
            plan.apply(0, 1, b"\x00" * 64)

    def test_crash_clears_after_first_attempts(self):
        plan = FaultPlan(faults=((0, FaultSpec(kind="crash", first_attempts=1)),))
        with pytest.raises(InjectedFault):
            plan.apply(0, 1, b"\x00" * 64)
        assert plan.apply(0, 2, b"\x00" * 64) == b"\x00" * 64

    def test_corruption_is_deterministic_and_bounded(self):
        spec = FaultSpec(kind="corrupt", corrupt_bits=8)
        plan_a = FaultPlan(faults=((0, spec),), seed=4)
        plan_b = FaultPlan(faults=((0, spec),), seed=4)
        data = bytes(range(256)) * 4
        corrupted_a = plan_a.apply(0, 1, data)
        corrupted_b = plan_b.apply(0, 1, data)
        assert corrupted_a == corrupted_b  # same seed, same damage
        flipped = sum(
            bin(x ^ y).count("1") for x, y in zip(corrupted_a, data)
        )
        assert 0 < flipped <= 8

    def test_different_seeds_corrupt_differently(self):
        spec = FaultSpec(kind="corrupt", corrupt_bits=64)
        data = bytes(1024)
        one = FaultPlan(faults=((0, spec),), seed=1).apply(0, 1, data)
        two = FaultPlan(faults=((0, spec),), seed=2).apply(0, 1, data)
        assert one != two

    def test_kill_downgrades_in_process(self):
        # A kill fault must never take down the orchestrator itself:
        # outside a subprocess it degrades to a raised InjectedFault.
        plan = FaultPlan(faults=((0, FaultSpec(kind="kill")),))
        with pytest.raises(InjectedFault):
            plan.apply(0, 1, b"\x00" * 64, in_subprocess=False)

    def test_hang_downgrades_in_process(self):
        plan = FaultPlan(faults=((0, FaultSpec(kind="hang", hang_seconds=60)),))
        with pytest.raises(InjectedFault):
            plan.apply(0, 1, b"\x00" * 64, in_subprocess=False)

    def test_scheduled_covers_requested_fractions(self):
        offsets = tuple(range(0, 64 * 100, 64))
        plan = FaultPlan.scheduled(
            seed=7,
            shard_offsets=offsets,
            crash_fraction=0.2,
            corrupt_fraction=0.1,
        )
        kinds = [spec.kind for _, spec in plan.faults]
        assert kinds.count("crash") == 20
        assert kinds.count("corrupt") == 10
        # Deterministic: same seed gives the same schedule.
        again = FaultPlan.scheduled(
            seed=7, shard_offsets=offsets, crash_fraction=0.2, corrupt_fraction=0.1
        )
        assert plan.faults == again.faults

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan(
            faults=tuple((i * 64, FaultSpec(kind=k)) for i, k in enumerate(FAULT_KINDS)),
            seed=3,
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.faults == plan.faults
        with pytest.raises(InjectedFault):
            clone.apply(0, 1, b"\x00" * 64)
