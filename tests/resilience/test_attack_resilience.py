"""Acceptance: the attack survives injected faults and killed runs.

These are the issue's two acceptance criteria, run against the real
pipeline on a synthetic scrambled dump with a planted XTS key table:

* a sharded scan sabotaged by seeded crashes / corruption recovers the
  same keys as a clean serial run, with unrecoverable shards
  quarantined and reported rather than silently dropped;
* a scan killed mid-run (SIGKILL — simulated power loss) resumes from
  its checkpoint journal and does not re-search completed shards.

The dump scan costs tens of seconds, so everything shares one
module-scoped dump + clean baseline, and each test adds at most one
more scan.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.attack.parallel import (
    parallel_recover_keys,
    resilient_recover_keys,
    shard_image,
)
from repro.attack.sweep import synthetic_dump
from repro.crypto.aes import schedule_bytes
from repro.resilience.executor import STATUS_FROM_CHECKPOINT, STATUS_OK
from repro.resilience.faults import PERMANENT, FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy

N_SHARDS = 4
SEED = 5


@pytest.fixture(scope="module")
def dump_and_master():
    dump, master, _ = synthetic_dump(bit_error_rate=0.0, seed=SEED)
    return dump, master


@pytest.fixture(scope="module")
def clean_baseline(dump_and_master):
    """Keys from an unsabotaged serial scan — the ground truth."""
    dump, _ = dump_and_master
    return parallel_recover_keys(dump, key_bits=256, workers=1, n_shards=N_SHARDS)


def test_clean_baseline_finds_the_planted_table(dump_and_master, clean_baseline):
    _, master = dump_and_master
    masters = {r.master_key for r in clean_baseline}
    assert master[:32] in masters and master[32:] in masters


def test_faulted_scan_matches_clean_run(dump_and_master, clean_baseline):
    """Crashes retry, corruption stays silent, a dead shard quarantines.

    One scan, three seeded faults: a transient crash on the shard that
    holds the key table (must be retried and still yield the keys), bit
    corruption on an empty shard (must not invent keys), and a permanent
    crash on another empty shard (must be quarantined and reported).
    """
    dump, _ = dump_and_master
    shards = shard_image(dump, N_SHARDS, overlap_bytes=schedule_bytes(256) + 64)
    assert len(shards) == N_SHARDS
    plan = FaultPlan(
        faults=(
            (shards[0].base_offset, FaultSpec(kind="crash", first_attempts=1)),
            (shards[1].base_offset, FaultSpec(kind="corrupt", corrupt_bits=64)),
            (shards[3].base_offset, FaultSpec(kind="crash", first_attempts=PERMANENT)),
        ),
        seed=SEED,
    )
    scan = resilient_recover_keys(
        dump,
        key_bits=256,
        workers=2,
        n_shards=N_SHARDS,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001, seed=SEED),
        fault_plan=plan,
    )
    # The permanently-crashing shard is quarantined and *reported*.
    assert scan.quarantined_offsets == [shards[3].base_offset]
    assert not scan.complete
    # Everything else converged to the clean run's answer.
    assert {r.master_key for r in scan.recovered} == {
        r.master_key for r in clean_baseline
    }
    # The crashed shard needed its retry.
    assert scan.ledger.outcomes[shards[0].base_offset].attempts == 2


KILLED_SCAN_SCRIPT = """
import sys
from repro.attack.parallel import resilient_recover_keys, shard_image
from repro.attack.sweep import synthetic_dump
from repro.crypto.aes import schedule_bytes
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.util.blocks import BLOCK_SIZE

dump, _, _ = synthetic_dump(bit_error_rate=0.0, seed={seed})
# The fused scan clears this dump in well under a second — too fast for
# the parent to catch a partially-written journal.  Hang every shard for
# a beat (far below the 900s shard timeout) so the kill lands mid-run;
# hang faults need killable workers, so run on a 2-process pool (the
# executor auto-picks "process" for plans with process-level faults).
shards = shard_image(dump, {n_shards}, overlap_bytes=schedule_bytes(256) + BLOCK_SIZE)
plan = FaultPlan(
    faults=tuple(
        (shard.base_offset, FaultSpec(kind="hang", hang_seconds=0.75))
        for shard in shards
    ),
    seed={seed},
)
print("scanning", flush=True)
resilient_recover_keys(
    dump, key_bits=256, workers=2, n_shards={n_shards}, checkpoint=sys.argv[1],
    fault_plan=plan,
)
print("finished", flush=True)  # the test SIGKILLs us long before this
"""


def _journaled_offsets(path: Path) -> list[int]:
    offsets = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record.get("type") == "shard":
            offsets.append(record["offset"])
    return offsets


def test_killed_scan_resumes_from_checkpoint(tmp_path, dump_and_master, clean_baseline):
    """SIGKILL a scan mid-run; the resumed run skips the finished shards."""
    dump, master = dump_and_master
    checkpoint = tmp_path / "scan.checkpoint.jsonl"
    script = tmp_path / "killed_scan.py"
    script.write_text(KILLED_SCAN_SCRIPT.format(seed=SEED, n_shards=N_SHARDS))

    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    child = subprocess.Popen(
        [sys.executable, str(script), str(checkpoint)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Simulated power loss: wait until some shards are journaled
        # (but not all), then kill -9 — no cleanup code may run.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                pytest.fail("scan finished before it could be killed")
            if checkpoint.exists() and 1 <= len(_journaled_offsets(checkpoint)) < N_SHARDS:
                break
            time.sleep(0.2)
        else:
            pytest.fail("no shard was journaled within the deadline")
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()

    survivors = _journaled_offsets(checkpoint)
    assert 1 <= len(survivors) < N_SHARDS

    scan = resilient_recover_keys(
        dump, key_bits=256, workers=1, n_shards=N_SHARDS, checkpoint=checkpoint
    )
    # Journaled shards were loaded, not re-searched; the rest ran fresh.
    statuses = {
        offset: outcome.status for offset, outcome in scan.ledger.outcomes.items()
    }
    assert all(statuses[offset] == STATUS_FROM_CHECKPOINT for offset in survivors)
    fresh = [offset for offset, status in statuses.items() if status == STATUS_OK]
    assert sorted(fresh) == sorted(set(statuses) - set(survivors))
    assert scan.resumed_shards == len(survivors)
    # And the resumed scan still finds the planted key table.
    masters = {r.master_key for r in scan.recovered}
    assert master[:32] in masters and master[32:] in masters
    assert masters == {r.master_key for r in clean_baseline}
