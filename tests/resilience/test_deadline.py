"""Unit tests for the monotonic deadline primitive and clamped sleeps."""

import time

import pytest

from repro.resilience.deadline import Deadline, clamp_sleep
from repro.resilience.errors import DeadlineExceededError, ReproError
from repro.resilience.retry import RetryPolicy


def test_after_pins_an_absolute_expiry():
    deadline = Deadline.after(60.0)
    assert not deadline.expired
    assert 0.0 < deadline.remaining() <= 60.0
    assert deadline.total_seconds == 60.0


def test_after_rejects_non_positive_budgets():
    with pytest.raises(ValueError):
        Deadline.after(0.0)
    with pytest.raises(ValueError):
        Deadline.after(-1.0)


def test_coerce_accepts_none_seconds_and_deadlines():
    assert Deadline.coerce(None) is None
    existing = Deadline.after(5.0)
    assert Deadline.coerce(existing) is existing
    coerced = Deadline.coerce(5)
    assert isinstance(coerced, Deadline)
    assert coerced.total_seconds == 5.0


def test_expired_deadline_reports_zero_remaining():
    deadline = Deadline(expires_at=time.monotonic() - 1.0, total_seconds=1.0)
    assert deadline.expired
    assert deadline.remaining() == 0.0


def test_check_raises_only_after_expiry():
    Deadline.after(60.0).check("live")  # must not raise
    expired = Deadline(expires_at=time.monotonic() - 1.0, total_seconds=2.5)
    with pytest.raises(DeadlineExceededError) as excinfo:
        expired.check("mining stage")
    assert "mining stage" in str(excinfo.value)
    # Deadline expiry is part of the operator-facing taxonomy: the CLI
    # turns ReproError into a one-line message, not a traceback.
    assert isinstance(excinfo.value, ReproError)


def test_clamp_caps_sleeps_to_the_remaining_budget():
    deadline = Deadline.after(0.5)
    assert deadline.clamp(10.0) <= 0.5
    assert deadline.clamp(0.0) == 0.0
    expired = Deadline(expires_at=time.monotonic() - 1.0, total_seconds=1.0)
    assert expired.clamp(10.0) == 0.0


def test_clamp_sleep_passes_through_without_a_deadline():
    assert clamp_sleep(7.0, None) == 7.0
    assert clamp_sleep(7.0, Deadline.after(60.0)) == 7.0


def test_retry_policy_backoff_is_deadline_clamped():
    policy = RetryPolicy(base_delay_s=10.0, max_delay_s=10.0, jitter=0.0)
    unclamped = policy.clamped_delay_s(0, 1, None)
    assert unclamped == policy.delay_s(0, 1) == 10.0
    near_expiry = Deadline.after(0.2)
    assert policy.clamped_delay_s(0, 1, near_expiry) <= 0.2
    expired = Deadline(expires_at=time.monotonic() - 1.0, total_seconds=1.0)
    assert policy.clamped_delay_s(0, 1, expired) == 0.0
