"""Data-level chaos: bit-rot, journal corruption, poisoned key matrices.

The process-level chaos suite (:mod:`tests.resilience.test_faults`)
kills and hangs workers; this one damages the *data* those workers
depend on and checks the runtime converges to the clean run's keys —
or quarantines with structured diagnostics — instead of crashing or
silently returning wrong answers.
"""

import pytest

from repro.attack.parallel import resilient_recover_keys
from repro.attack.sweep import synthetic_dump
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy

N_SHARDS = 4


@pytest.fixture(scope="module")
def dump():
    image, master, _ = synthetic_dump(bit_error_rate=0.002, seed=5)
    return image, master


@pytest.fixture(scope="module")
def clean_scan(dump):
    image, _ = dump
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05)
    report = resilient_recover_keys(image, workers=1, n_shards=N_SHARDS, retry_policy=policy)
    assert report.recovered
    return report


def _policy() -> RetryPolicy:
    return RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05)


def _keys(report) -> list[bytes]:
    return sorted(r.master_key for r in report.recovered)


def _shard_offsets(clean_scan) -> list[int]:
    return sorted(outcome.shard_offset for outcome in clean_scan.ledger.completed)


class TestSingleDataFaults:
    def test_mild_bitrot_on_the_key_shard_is_absorbed(self, dump, clean_scan):
        """Localized rot within the decay budget degrades nothing.

        Bit-rot is *data* damage: the scan still runs, and the search's
        Hamming tolerances — not retries — are what absorb it.  Rot the
        shard holding the planted key table at a rate the budget covers
        and the recovered keys must stay byte-identical.
        """
        image, _ = dump
        offsets = _shard_offsets(clean_scan)
        plan = FaultPlan(
            faults=(
                (offsets[0], FaultSpec(kind="bitrot", corrupt_rate=0.002, first_attempts=1)),
            ),
            seed=7,
        )
        report = resilient_recover_keys(
            image, workers=1, n_shards=N_SHARDS, retry_policy=_policy(), fault_plan=plan
        )
        assert _keys(report) == _keys(clean_scan)
        assert report.quarantined_offsets == []

    def test_poisoned_key_matrix_is_caught_and_retried(self, dump, clean_scan):
        """A corrupted shared key matrix must fail its CRC, not mislead."""
        image, _ = dump
        offsets = _shard_offsets(clean_scan)
        plan = FaultPlan(
            faults=((offsets[0], FaultSpec(kind="poison", corrupt_bits=16, first_attempts=1)),),
            seed=11,
        )
        events: list[str] = []
        report = resilient_recover_keys(
            image,
            workers=1,
            n_shards=N_SHARDS,
            retry_policy=_policy(),
            fault_plan=plan,
            on_event=events.append,
        )
        assert _keys(report) == _keys(clean_scan)
        assert any("retry" in event for event in events)

    def test_heavy_bitrot_degrades_without_crashing(self, dump, clean_scan):
        """Rot far past the decay budget loses keys, never the run.

        The run must complete (no exception, nothing quarantined — the
        bytes were scanned, they just carry nothing recoverable) and
        never invent keys the clean scan didn't find.
        """
        from repro.resilience.faults import PERMANENT

        image, _ = dump
        offsets = _shard_offsets(clean_scan)
        plan = FaultPlan(
            faults=(
                (
                    offsets[0],
                    FaultSpec(kind="bitrot", corrupt_rate=0.2, first_attempts=PERMANENT),
                ),
            ),
            seed=13,
        )
        report = resilient_recover_keys(
            image, workers=1, n_shards=N_SHARDS, retry_policy=_policy(), fault_plan=plan
        )
        assert report.complete
        assert set(_keys(report)) < set(_keys(clean_scan))


class TestJournalFaults:
    def test_corrupted_record_is_rejected_on_resume(self, dump, clean_scan, tmp_path):
        image, _ = dump
        offsets = _shard_offsets(clean_scan)
        journal = tmp_path / "scan.checkpoint.jsonl"
        plan = FaultPlan(faults=((offsets[2], FaultSpec(kind="journal")),), seed=17)
        first = resilient_recover_keys(
            image,
            workers=1,
            n_shards=N_SHARDS,
            retry_policy=_policy(),
            fault_plan=plan,
            checkpoint=journal,
            resume=True,
        )
        assert _keys(first) == _keys(clean_scan)

        second = resilient_recover_keys(
            image,
            workers=1,
            n_shards=N_SHARDS,
            retry_policy=_policy(),
            checkpoint=journal,
            resume=True,
        )
        assert second.checkpoint_rejected is not None
        # Depending on which byte the rot hit, the bad line is caught by
        # the per-line CRC or by the JSON parser — both are structured
        # rejections naming the line, never a replay of bad data.
        assert ("CRC mismatch" in second.checkpoint_rejected
                or "unreadable record" in second.checkpoint_rejected)
        assert "line" in second.checkpoint_rejected
        assert second.resumed_shards == 0  # nothing replayed from the bad journal
        assert _keys(second) == _keys(clean_scan)

    def test_clean_journal_still_resumes(self, dump, clean_scan, tmp_path):
        image, _ = dump
        journal = tmp_path / "scan.checkpoint.jsonl"
        first = resilient_recover_keys(
            image, workers=1, n_shards=N_SHARDS, retry_policy=_policy(),
            checkpoint=journal, resume=True,
        )
        second = resilient_recover_keys(
            image, workers=1, n_shards=N_SHARDS, retry_policy=_policy(),
            checkpoint=journal, resume=True,
        )
        assert second.checkpoint_rejected is None
        assert second.resumed_shards == N_SHARDS
        assert _keys(first) == _keys(second) == _keys(clean_scan)


class TestCombinedChaos:
    def test_all_three_data_faults_in_one_scan(self, dump, clean_scan, tmp_path):
        """Bit-rot + a poisoned key matrix + a corrupted journal line,
        all in one run: the scan must still converge byte-for-byte."""
        image, _ = dump
        offsets = _shard_offsets(clean_scan)
        journal = tmp_path / "chaos.checkpoint.jsonl"
        plan = FaultPlan(
            faults=(
                (offsets[0], FaultSpec(kind="bitrot", corrupt_rate=0.002, first_attempts=1)),
                (offsets[1], FaultSpec(kind="poison", corrupt_bits=16, first_attempts=1)),
                (offsets[2], FaultSpec(kind="journal")),
            ),
            seed=23,
        )
        chaotic = resilient_recover_keys(
            image,
            workers=1,
            n_shards=N_SHARDS,
            retry_policy=_policy(),
            fault_plan=plan,
            checkpoint=journal,
            resume=True,
        )
        assert _keys(chaotic) == _keys(clean_scan)
        assert chaotic.quarantined_offsets == []

        # The journal fault left a rotten line behind; the resume path
        # must reject it with a diagnostic and rescan to the same keys.
        resumed = resilient_recover_keys(
            image,
            workers=1,
            n_shards=N_SHARDS,
            retry_policy=_policy(),
            checkpoint=journal,
            resume=True,
        )
        assert resumed.checkpoint_rejected is not None
        assert _keys(resumed) == _keys(clean_scan)

    def test_multiprocess_poison_converges(self, dump, clean_scan):
        """The CRC check must also hold on the real shared-memory path."""
        image, _ = dump
        offsets = _shard_offsets(clean_scan)
        plan = FaultPlan(
            faults=((offsets[0], FaultSpec(kind="poison", corrupt_bits=16)),), seed=29
        )
        report = resilient_recover_keys(
            image, workers=2, n_shards=N_SHARDS, retry_policy=_policy(), fault_plan=plan
        )
        assert _keys(report) == _keys(clean_scan)


class TestCliSurface:
    def test_adaptive_cli_reports_quarantine_without_traceback(self, tmp_path, capsys):
        """A torn dump at the CLI yields diagnostics, never a traceback."""
        import json

        from repro.cli import main
        from repro.dram.image import MemoryImage

        # A dump large enough that every keystream block has a donor
        # zero page outside any single 256 KiB region — the torn region
        # must cost coverage, not the key table.
        image, _, _ = synthetic_dump(bit_error_rate=0.002, n_blocks=6 * 4096, seed=5)
        region = 256 * 1024
        start = 2 * region
        torn = image.data[:start] + b"\xaa" * region + image.data[start + region :]
        dump_path = tmp_path / "torn.bin"
        MemoryImage(torn).save(dump_path)
        report_path = tmp_path / "report.json"

        code = main(
            ["attack", str(dump_path), "--adaptive", "--json", str(report_path)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Traceback" not in captured.err and "Traceback" not in captured.out
        assert "torn" in captured.err

        payload = json.loads(report_path.read_text())
        regions = payload["robustness"]["quarantined_regions"]
        assert len(regions) == 1
        assert regions[0]["reason"] == "torn"
        assert regions[0]["offset"] == start
