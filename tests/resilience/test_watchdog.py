"""Heartbeat watchdog: board units, monitor stall logic, hung-worker kills.

The monitor units drive :meth:`HeartbeatMonitor.scan_once` with an
injected clock — no threads, no sleeping.  The acceptance tests run a
*genuinely* hung worker (an uninstrumented busy loop, no fault-plan
cooperation) under the real pool executor and assert it is detected,
killed, resubmitted, and that the run still converges to the right
answer.
"""

import time

import pytest

from repro.resilience.errors import ShardStallError
from repro.resilience.executor import ResilientShardRunner
from repro.resilience.resources import ResourcePolicy
from repro.resilience.retry import RetryPolicy
from repro.resilience.watchdog import (
    HeartbeatBoard,
    HeartbeatMonitor,
    WatchdogConfig,
    attach_worker_heartbeat,
    beat,
    detach_worker_heartbeat,
)

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


# ------------------------------------------------------------------- config


def test_config_validation():
    with pytest.raises(ValueError):
        WatchdogConfig(stall_timeout_s=0.0)
    with pytest.raises(ValueError):
        WatchdogConfig(poll_interval_s=-1.0)
    with pytest.raises(ValueError):
        WatchdogConfig(max_stall_kills=0)


# -------------------------------------------------------------------- board


def test_board_counts_beats_per_slot():
    with HeartbeatBoard.create(3) as board:
        assert board.values() == [0, 0, 0]
        board.beat(1)
        board.beat(1)
        board.beat(2)
        assert board.values() == [0, 2, 1]


def test_board_requires_a_shared_backend():
    policy = ResourcePolicy(allow_shm=False, allow_file=False)
    assert HeartbeatBoard.create(4, policy) is None


def test_board_rejects_zero_slots():
    with pytest.raises(ValueError):
        HeartbeatBoard.create(0)


def test_worker_attach_protocol_reaches_the_owner_view():
    """A worker attached by ref beats into the owner's counters."""
    with HeartbeatBoard.create(2) as board:
        try:
            attach_worker_heartbeat(board.ref, {0x1000: 0, 0x2000: 1})
            beat(0x2000)
            beat(0x2000)
            beat(0x1000)
            assert board.values() == [1, 2]
            # Unknown shard offsets are ignored, not an error.
            beat(0x9999)
            assert board.values() == [1, 2]
        finally:
            detach_worker_heartbeat()


def test_beat_without_attachment_is_a_noop():
    detach_worker_heartbeat()
    beat(0x1000)  # must not raise


def test_file_backend_board_works_cross_policy():
    """With shm denied, the board degrades to an mmap tempfile."""
    policy = ResourcePolicy(allow_shm=False)
    board = HeartbeatBoard.create(1, policy)
    assert board is not None
    try:
        assert board.backend == "file"
        attach_worker_heartbeat(board.ref, {0: 0})
        beat(0)
        assert board.value(0) == 1
    finally:
        detach_worker_heartbeat()
        board.unlink()


# ------------------------------------------------------------------ monitor


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def monitor_parts():
    board = HeartbeatBoard.create(2)
    clock = FakeClock()
    config = WatchdogConfig(stall_timeout_s=5.0, poll_interval_s=0.1)
    monitor = HeartbeatMonitor(board, {0x100: 0, 0x200: 1}, config, clock=clock)
    yield board, monitor, clock
    board.unlink()


def test_silence_before_the_first_beat_is_not_a_stall(monitor_parts):
    """Queued shards never beat; only armed counters can stall."""
    board, monitor, clock = monitor_parts
    monitor.track(0x100)
    clock.advance(1000.0)
    monitor.scan_once()
    assert monitor.take_stalled() == []


def test_armed_counter_going_silent_is_a_stall(monitor_parts):
    board, monitor, clock = monitor_parts
    monitor.track(0x100)
    board.beat(0)  # arms the stall clock
    monitor.scan_once()
    clock.advance(5.1)
    monitor.scan_once()
    stalled = monitor.take_stalled()
    assert [offset for offset, _ in stalled] == [0x100]
    assert stalled[0][1] > 5.0


def test_steady_beats_never_stall(monitor_parts):
    board, monitor, clock = monitor_parts
    monitor.track(0x100)
    for _ in range(10):
        board.beat(0)
        monitor.scan_once()
        clock.advance(4.0)  # always inside the 5 s stall budget
    monitor.scan_once()
    assert monitor.take_stalled() == []


def test_take_stalled_drains_and_resubmission_rearms(monitor_parts):
    board, monitor, clock = monitor_parts
    monitor.track(0x100)
    board.beat(0)
    monitor.scan_once()
    clock.advance(6.0)
    monitor.scan_once()
    assert monitor.take_stalled() != []
    assert monitor.take_stalled() == []  # drained
    # Resubmission re-tracks with a fresh, unarmed clock.
    monitor.track(0x100)
    clock.advance(1000.0)
    monitor.scan_once()
    assert monitor.take_stalled() == []


def test_untracked_shards_cannot_stall(monitor_parts):
    board, monitor, clock = monitor_parts
    monitor.track(0x200)
    board.beat(1)
    monitor.scan_once()
    monitor.untrack(0x200)
    clock.advance(60.0)
    monitor.scan_once()
    assert monitor.take_stalled() == []


def test_monitor_thread_starts_and_stops():
    board = HeartbeatBoard.create(1)
    try:
        monitor = HeartbeatMonitor(board, {0: 0}, WatchdogConfig(poll_interval_s=0.01))
        monitor.start()
        monitor.start()  # idempotent
        assert monitor._thread is not None and monitor._thread.is_alive()
        monitor.stop()
        assert monitor._thread is None
        monitor.stop()  # idempotent
    finally:
        board.unlink()


# --------------------------------------------------- executor integration
#
# The hung workers below are *not* fault-plan cooperators: they beat on
# entry (arming the stall clock) and then spin in an uninstrumented busy
# loop.  The loop is time-bounded only so a broken watchdog fails the
# test instead of wedging the suite.

_HANG_BOUND_S = 30.0


def _spin(seconds: float) -> None:
    end = time.monotonic() + seconds
    while time.monotonic() < end:
        pass


def _hang_once_worker(payload, shard_offset, attempt, in_subprocess):
    beat(shard_offset)
    if shard_offset == 0 and attempt == 1 and in_subprocess:
        _spin(_HANG_BOUND_S)
    return payload * 2


def _always_hang_worker(payload, shard_offset, attempt, in_subprocess):
    beat(shard_offset)
    if in_subprocess:
        _spin(_HANG_BOUND_S)
    return payload * 2


def _watchdog_runner(worker, board, slot_of, config, **kwargs):
    monitor = HeartbeatMonitor(board, slot_of, config)
    runner = ResilientShardRunner(
        worker,
        workers=2,
        policy=kwargs.pop("policy"),
        initializer=attach_worker_heartbeat,
        initargs=(board.ref, slot_of),
        **kwargs,
    )
    return runner, monitor


def test_hung_worker_is_stall_killed_and_resubmitted():
    """A wedged worker is detected in ~stall_timeout, not ~shard_timeout."""
    jobs = {0: 10, 1: 20, 2: 30}
    slot_of = {offset: slot for slot, offset in enumerate(sorted(jobs))}
    config = WatchdogConfig(stall_timeout_s=0.5, poll_interval_s=0.05)
    with HeartbeatBoard.create(len(jobs)) as board:
        runner, monitor = _watchdog_runner(
            _hang_once_worker,
            board,
            slot_of,
            config,
            policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.001, shard_timeout_s=_HANG_BOUND_S * 4
            ),
        )
        start = time.monotonic()
        ledger = runner.run(jobs, watchdog=monitor)
        elapsed = time.monotonic() - start

    assert ledger.stall_kills == 1
    assert ledger.pool_rebuilds == 0  # stall kills are not rebuild budget
    assert not ledger.degraded_to_serial
    # Every shard converged, including the one whose first attempt hung.
    assert {o: out.result for o, out in ledger.outcomes.items()} == {0: 20, 1: 40, 2: 60}
    assert ledger.outcomes[0].attempts == 2
    assert any("ShardStallError" in e for e in ledger.outcomes[0].errors)
    # Detection ran on the stall clock, nowhere near the hang bound.
    assert elapsed < _HANG_BOUND_S


def test_consecutive_stalls_trip_the_circuit_breaker_to_serial():
    """A pool that hangs every worker is abandoned for serial execution."""
    jobs = {0: 1, 1: 2}
    slot_of = {offset: slot for slot, offset in enumerate(sorted(jobs))}
    config = WatchdogConfig(stall_timeout_s=0.4, poll_interval_s=0.05, max_stall_kills=2)
    events: list[str] = []
    with HeartbeatBoard.create(len(jobs)) as board:
        runner, monitor = _watchdog_runner(
            _always_hang_worker,
            board,
            slot_of,
            config,
            policy=RetryPolicy(
                max_attempts=6, base_delay_s=0.001, shard_timeout_s=_HANG_BOUND_S * 4
            ),
            on_event=events.append,
        )
        ledger = runner.run(jobs, watchdog=monitor)

    assert ledger.stall_kills >= config.max_stall_kills
    assert ledger.degraded_to_serial
    # Serial execution (in_subprocess=False) completes the shards.
    assert {o: out.result for o, out in ledger.outcomes.items()} == {0: 2, 1: 4}
    assert any("degrading" in event for event in events)


def test_stall_error_is_structured():
    error = ShardStallError(0x4000, 12.5, 2)
    assert error.shard_offset == 0x4000
    assert error.stalled_seconds == 12.5
    assert error.attempt == 2
    assert "0x4000" in str(error)


def test_decode_heartbeats_keep_the_stall_clock_fed(monitor_parts):
    """A belief-propagation decode beats the watchdog from inside its
    sweep loop (decode_schedules' on_progress hook): advancing the
    clock close to the stall budget between sweeps must never trip the
    monitor, while the same schedule decoded with the hook disconnected
    stalls — multi-minute decodes are workers, not hangs."""
    import numpy as np

    from repro.attack.decode import ChannelModel, decode_schedule
    from repro.crypto.aes import expand_key

    board, monitor, clock = monitor_parts
    monitor.track(0x100)
    board.beat(0)  # arm
    monitor.scan_once()

    rng = np.random.default_rng(8)
    master = bytes(rng.integers(0, 256, 32, np.uint8))
    bits = np.unpackbits(np.frombuffer(expand_key(master), dtype=np.uint8))
    bits ^= rng.random(bits.size) < 0.06
    observed = np.packbits(bits)

    def beat_and_tick():
        board.beat(0)
        monitor.scan_once()
        clock.advance(4.0)  # each sweep "takes" most of the 5 s budget

    result = decode_schedule(
        observed,
        256,
        ChannelModel.symmetric(0.06),
        on_progress=beat_and_tick,
        beat_every=1,
    )
    assert not result.abstained()
    monitor.scan_once()
    assert monitor.take_stalled() == []

    # Same decode, hook disconnected: the armed counter goes silent for
    # the whole run and the monitor must flag the stall.
    monitor.track(0x100)
    board.beat(0)
    monitor.scan_once()
    decode_schedule(observed, 256, ChannelModel.symmetric(0.06))
    clock.advance(6.0)
    monitor.scan_once()
    assert [offset for offset, _ in monitor.take_stalled()] == [0x100]
