"""Graceful shutdown and deadlines, from unit flags to killed processes.

The acceptance tests mirror ``test_attack_resilience``'s SIGKILL test,
but with catchable signals: a real ``python -m repro attack`` subprocess
is SIGTERM'd/SIGINT'd mid-scan and must drain to its checkpoint journal,
exit with the distinct resumable status, and resume byte-identical.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.resilience.deadline import Deadline
from repro.resilience.executor import (
    STATUS_EXPIRED,
    STATUS_INTERRUPTED,
    STATUS_OK,
    ResilientShardRunner,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.shutdown import (
    EXIT_DEADLINE_EXPIRED,
    EXIT_INTERRUPTED,
    GracefulShutdown,
)

SEED = 5
N_SHARDS = 8
WORKERS = 2
#: Blocks in the acceptance dump.  The fused scan clears the seed-era
#: 768 KiB dump in milliseconds — far too fast to signal mid-scan — so
#: the subprocess tests use 64 MiB (~0.5 s per 8 MiB shard), keeping
#: shards queued while the signal is delivered and drained.
N_BLOCKS = 1 << 20


# ------------------------------------------------------------ shutdown flags


def test_first_request_sets_stop_second_sets_force():
    stop = GracefulShutdown()
    assert not stop.requested and not stop.forced
    stop.request("SIGTERM")
    assert stop.requested and not stop.forced
    assert stop.cause == "SIGTERM"
    stop.request("SIGTERM")  # second request escalates
    assert stop.forced


def test_explicit_force_skips_the_escalation_ladder():
    stop = GracefulShutdown()
    stop.request("chaos", force=True)
    assert stop.requested and stop.forced


def test_real_signals_set_flags_and_restore_handlers():
    previous = signal.getsignal(signal.SIGUSR1)
    try:
        signal.signal(signal.SIGUSR1, signal.SIG_IGN)
        with GracefulShutdown(signals=(signal.SIGUSR1,)) as stop:
            os.kill(os.getpid(), signal.SIGUSR1)
            for _ in range(100):
                if stop.requested:
                    break
                time.sleep(0.01)
            assert stop.requested
            assert stop.cause == "SIGUSR1"
            assert not stop.forced
            os.kill(os.getpid(), signal.SIGUSR1)
            for _ in range(100):
                if stop.forced:
                    break
                time.sleep(0.01)
            assert stop.forced
            # The second signal already handed handlers back to the OS.
            assert signal.getsignal(signal.SIGUSR1) == signal.SIG_IGN
        assert signal.getsignal(signal.SIGUSR1) == signal.SIG_IGN
    finally:
        signal.signal(signal.SIGUSR1, previous)


# ------------------------------------------------------- executor semantics


def _slow_worker(payload, shard_offset, attempt, in_subprocess):
    time.sleep(0.3)
    return payload + 1


def test_graceful_stop_drains_in_flight_and_marks_the_rest():
    """First signal: in-flight shards reach a verdict, queue is dropped."""
    runner = ResilientShardRunner(
        _slow_worker, workers=2, policy=RetryPolicy(base_delay_s=0.001)
    )
    stop = GracefulShutdown()
    results: list[int] = []

    def on_first_result(offset, result):
        results.append(offset)
        if not stop.requested:
            stop.request("SIGTERM")

    runner.on_result = on_first_result
    jobs = {offset: offset for offset in range(0, 40, 10)}
    ledger = runner.run(jobs, stop=stop)

    assert ledger.interrupted
    assert ledger.stop_cause == "SIGTERM"
    statuses = {o: out.status for o, out in ledger.outcomes.items()}
    assert sorted(statuses.values()).count(STATUS_OK) == len(results)
    unfinished = [o for o, s in statuses.items() if s == STATUS_INTERRUPTED]
    assert set(unfinished) == set(jobs) - set(results)
    assert unfinished  # the stop landed before the whole run finished
    # Drained shards really produced results (journaled, in real runs).
    for offset in results:
        assert ledger.outcomes[offset].result == offset + 1


def test_forced_stop_abandons_in_flight_work():
    runner = ResilientShardRunner(
        _slow_worker, workers=2, policy=RetryPolicy(base_delay_s=0.001)
    )
    stop = GracefulShutdown()
    stop.request("SIGTERM", force=True)
    start = time.monotonic()
    ledger = runner.run({0: 0, 10: 10}, stop=stop)
    assert time.monotonic() - start < 2.0
    assert ledger.interrupted
    assert all(o.status == STATUS_INTERRUPTED for o in ledger.outcomes.values())


def test_deadline_expiry_marks_pending_shards_expired():
    runner = ResilientShardRunner(
        _slow_worker, workers=2, policy=RetryPolicy(base_delay_s=0.001)
    )
    jobs = {offset: offset for offset in range(0, 60, 10)}
    ledger = runner.run(jobs, deadline=Deadline.after(0.45))
    assert ledger.deadline_expired
    assert ledger.stop_cause == "deadline"
    statuses = [o.status for o in ledger.outcomes.values()]
    assert STATUS_EXPIRED in statuses
    assert len(ledger.outcomes) == len(jobs)  # every shard got a verdict


def test_serial_runner_honours_stop_and_deadline():
    runner = ResilientShardRunner(_slow_worker, workers=1)
    ledger = runner.run({0: 0, 10: 10, 20: 20}, deadline=Deadline.after(0.45))
    assert ledger.deadline_expired
    assert any(o.status == STATUS_EXPIRED for o in ledger.outcomes.values())

    stop = GracefulShutdown()
    stop.request("SIGINT")
    ledger = runner.run({0: 0}, stop=stop)
    assert ledger.interrupted
    assert ledger.outcomes[0].status == STATUS_INTERRUPTED


# ------------------------------------------------------ CLI acceptance runs


@pytest.fixture(scope="module")
def dump_file(tmp_path_factory):
    from repro.attack.sweep import synthetic_dump

    dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=N_BLOCKS, seed=SEED)
    path = tmp_path_factory.mktemp("signals") / "dump.bin"
    path.write_bytes(bytes(dump.data))
    return path, master


def _journaled_offsets(path: Path) -> list[int]:
    offsets = []
    if not path.exists():
        return offsets
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record.get("type") == "shard":
            offsets.append(record["offset"])
    return offsets


def _attack_argv(dump_path, checkpoint, *extra):
    return [
        "attack", str(dump_path), "--workers", str(WORKERS), "--shards", str(N_SHARDS),
        "--checkpoint", str(checkpoint), *extra,
    ]


def _spawn_cli(argv):
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _assert_resume_recovers(dump_path, checkpoint, master, survivors):
    """A resumed CLI run completes from the journal, byte-identical."""
    report_path = checkpoint.parent / "resumed.json"
    rc = cli_main(
        _attack_argv(dump_path, checkpoint, "--resume", "--json", str(report_path))
    )
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["resilience"]["resumed_shards"] == len(survivors)
    assert report["resilience"]["complete_scan"]
    recovered = {r["master_key"] for r in report["recovered_keys"]}
    assert master[:32].hex() in recovered and master[32:].hex() in recovered


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signalled_scan_drains_and_resumes(tmp_path, dump_file, signum):
    """Mid-scan SIGTERM/SIGINT → drain, exit 3, resume byte-identical."""
    dump_path, master = dump_file
    checkpoint = tmp_path / "scan.checkpoint.jsonl"
    child = _spawn_cli(_attack_argv(dump_path, checkpoint))
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                pytest.fail("scan finished before it could be signalled")
            # Signal while shards are still *queued*: the lazy executor
            # keeps at most WORKERS in flight, and at most another
            # WORKERS can journal between this poll and the delivery,
            # so breaking at <= N_SHARDS - 2*WORKERS - 1 guarantees the
            # drain leaves the queue's tail unscanned.
            if 1 <= len(_journaled_offsets(checkpoint)) <= N_SHARDS - 2 * WORKERS - 1:
                break
            time.sleep(0.02)
        else:
            pytest.fail("no shard was journaled within the deadline")
        child.send_signal(signum)
        rc = child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()

    assert rc == EXIT_INTERRUPTED
    survivors = _journaled_offsets(checkpoint)
    # Draining means in-flight shards landed in the journal — at least
    # the one that was already there, and not the whole scan.
    assert 1 <= len(survivors) < N_SHARDS
    _assert_resume_recovers(dump_path, checkpoint, master, survivors)


def test_deadline_expiry_writes_partial_report_and_resumes(tmp_path, dump_file):
    """--deadline expiry → exit 4, schema-v4 partial report, clean resume."""
    dump_path, master = dump_file
    checkpoint = tmp_path / "scan.checkpoint.jsonl"
    report_path = tmp_path / "partial.json"
    rc = cli_main(
        _attack_argv(
            dump_path, checkpoint, "--deadline", "1.0", "--json", str(report_path)
        )
    )
    assert rc == EXIT_DEADLINE_EXPIRED

    from repro.attack.report import REPORT_SCHEMA_VERSION

    report = json.loads(report_path.read_text())
    assert report["schema_version"] == REPORT_SCHEMA_VERSION
    timing = report["timing"]
    assert timing["deadline_seconds"] == 1.0
    assert timing["deadline_expired"] is True
    assert timing["interrupted"] is False
    assert timing["expiry_cause"] == "deadline"
    assert report["resilience"]["unscanned_shards"]
    assert not report["resilience"]["complete_scan"]

    survivors = _journaled_offsets(checkpoint)
    _assert_resume_recovers(dump_path, checkpoint, master, survivors)
