"""Contract tests for the benchmark record schemas.

``BENCH_scan.json`` (bench-scan/v1) and ``BENCH_machine.json``
(bench-machine/v1) are consumed across sessions (CI artifacts,
perf-trajectory diffs), so the schemas are pinned here: a record the
validator accepts today must keep validating, and the validator must
reject every mutation a refactor could plausibly introduce.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import (  # noqa: E402
    BENCH_SCHEMA,
    REQUIRED_STAGES,
    STAGE_FIELDS,
    validate_bench_record,
)
from benchmarks import machine_harness  # noqa: E402


def stage_record(wall_s=1.5, workers=1):
    return {"wall_s": wall_s, "blocks_per_s": 1000.0, "keys": 4096, "workers": workers}


def valid_record(with_baseline=True):
    stages = {name: stage_record() for name in REQUIRED_STAGES}
    record = {
        "schema": BENCH_SCHEMA,
        "config": {"size_mib": 64, "workers": 4, "seed": 5, "bit_error_rate": 0.002},
        "stages": stages,
        "baseline": None,
    }
    if with_baseline:
        record["baseline"] = {name: stage_record(wall_s=6.0) for name in REQUIRED_STAGES}
        record["identical_keys"] = True
        record["speedup_vs_baseline"] = {"join": 4.0, "verify": 4.0, "end_to_end": 4.0}
    return record


def test_valid_record_passes():
    validate_bench_record(valid_record())


def test_valid_record_without_baseline_passes():
    validate_bench_record(valid_record(with_baseline=False))


def test_json_roundtrip_still_validates(tmp_path):
    path = tmp_path / "BENCH_scan.json"
    path.write_text(json.dumps(valid_record()))
    validate_bench_record(json.loads(path.read_text()))


def test_wrong_schema_tag_rejected():
    record = valid_record()
    record["schema"] = "bench-scan/v0"
    with pytest.raises(ValueError, match="schema"):
        validate_bench_record(record)


def test_missing_config_field_rejected():
    record = valid_record()
    del record["config"]["workers"]
    with pytest.raises(ValueError, match="workers"):
        validate_bench_record(record)


@pytest.mark.parametrize("stage", REQUIRED_STAGES)
def test_missing_stage_rejected(stage):
    record = valid_record()
    del record["stages"][stage]
    with pytest.raises(ValueError, match=stage):
        validate_bench_record(record)


@pytest.mark.parametrize("field", STAGE_FIELDS)
def test_missing_stage_field_rejected(field):
    record = valid_record()
    del record["stages"]["join"][field]
    with pytest.raises(ValueError, match=field):
        validate_bench_record(record)


def test_negative_wall_time_rejected():
    record = valid_record()
    record["stages"]["verify"]["wall_s"] = -0.1
    with pytest.raises(ValueError, match="wall_s"):
        validate_bench_record(record)


def test_zero_workers_rejected():
    record = valid_record()
    record["stages"]["end_to_end"]["workers"] = 0
    with pytest.raises(ValueError):
        validate_bench_record(record)


def test_baseline_without_speedups_rejected():
    record = valid_record()
    del record["speedup_vs_baseline"]
    with pytest.raises(ValueError, match="speedup"):
        validate_bench_record(record)


def test_baseline_without_identical_keys_rejected():
    record = valid_record()
    del record["identical_keys"]
    with pytest.raises(ValueError, match="identical_keys"):
        validate_bench_record(record)


# ------------------------------------------------- bench-machine/v1 schema


def machine_stage(wall_s=0.5):
    return {"wall_s": wall_s, "mib_per_s": 128.0}


def valid_machine_record(with_baseline=True):
    stages = {name: machine_stage() for name in machine_harness.REQUIRED_STAGES}
    record = {
        "schema": machine_harness.BENCH_SCHEMA,
        "config": {
            "size_mib": 64,
            "machine": "i5-6400",
            "seed": 7,
            "decay_flip_probability": 0.001,
        },
        "stages": stages,
        "baseline": None,
    }
    if with_baseline:
        record["baseline"] = {
            name: machine_stage(wall_s=8.0) for name in machine_harness.REQUIRED_STAGES
        }
        record["identical_dumps"] = True
        record["speedup_vs_baseline"] = {
            name: 16.0 for name in machine_harness.REQUIRED_STAGES
        }
    return record


def test_valid_machine_record_passes():
    machine_harness.validate_bench_record(valid_machine_record())


def test_valid_machine_record_without_baseline_passes():
    machine_harness.validate_bench_record(valid_machine_record(with_baseline=False))


def test_machine_json_roundtrip_still_validates(tmp_path):
    path = tmp_path / "BENCH_machine.json"
    path.write_text(json.dumps(valid_machine_record()))
    machine_harness.validate_bench_record(json.loads(path.read_text()))


def test_machine_wrong_schema_tag_rejected():
    record = valid_machine_record()
    record["schema"] = BENCH_SCHEMA  # the scan schema is not the machine schema
    with pytest.raises(ValueError, match="schema"):
        machine_harness.validate_bench_record(record)


@pytest.mark.parametrize("field", ["size_mib", "machine", "seed", "decay_flip_probability"])
def test_machine_missing_config_field_rejected(field):
    record = valid_machine_record()
    del record["config"][field]
    with pytest.raises(ValueError, match=field):
        machine_harness.validate_bench_record(record)


@pytest.mark.parametrize("stage", machine_harness.REQUIRED_STAGES)
def test_machine_missing_stage_rejected(stage):
    record = valid_machine_record()
    del record["stages"][stage]
    with pytest.raises(ValueError, match=stage):
        machine_harness.validate_bench_record(record)


@pytest.mark.parametrize("field", machine_harness.STAGE_FIELDS)
def test_machine_missing_stage_field_rejected(field):
    record = valid_machine_record()
    del record["stages"]["fill"][field]
    with pytest.raises(ValueError, match=field):
        machine_harness.validate_bench_record(record)


def test_machine_negative_wall_time_rejected():
    record = valid_machine_record()
    record["stages"]["dump"]["wall_s"] = -0.1
    with pytest.raises(ValueError, match="wall_s"):
        machine_harness.validate_bench_record(record)


def test_machine_baseline_without_identity_gate_rejected():
    """A baseline record must assert byte-identical dumps, not just omit it."""
    record = valid_machine_record()
    del record["identical_dumps"]
    with pytest.raises(ValueError, match="identical_dumps"):
        machine_harness.validate_bench_record(record)
    record = valid_machine_record()
    record["identical_dumps"] = False
    with pytest.raises(ValueError, match="identical_dumps"):
        machine_harness.validate_bench_record(record)


def test_committed_machine_record_validates():
    """The checked-in BENCH_machine.json must satisfy its own schema."""
    path = Path(__file__).resolve().parent.parent / "BENCH_machine.json"
    record = json.loads(path.read_text())
    machine_harness.validate_bench_record(record)
    assert record["identical_dumps"] is True
    assert record["speedup_vs_baseline"]["end_to_end"] >= 10.0


# --------------------------------------------------- robust-chaos/v1 schema


from benchmarks.chaos_soak import (  # noqa: E402
    CHAOS_SCHEMA,
    SCENARIOS,
    validate_chaos_record,
)


def chaos_iteration(iteration=0, scenario="crash-retry", violations=()):
    return {
        "iteration": iteration,
        "scenario": scenario,
        "fault_kinds": ["crash"],
        "workers": 2,
        "backend": "shm",
        "complete_first_pass": True,
        "interrupted": False,
        "deadline_expired": False,
        "stall_kills": 0,
        "pool_rebuilds": 0,
        "degraded_to_serial": False,
        "journaled_shards": 4,
        "resumed_shards": 0,
        "resume_ran": False,
        "keys_byte_identical": True,
        "seconds": 3.2,
        "violations": list(violations),
    }


def valid_chaos_record():
    return {
        "schema": CHAOS_SCHEMA,
        "seed": 5,
        "n_shards": 4,
        "baseline_keys": 2,
        "repro_command": (
            "PYTHONPATH=src python -m benchmarks.chaos_soak "
            "--seed 5 --iterations 56"),
        "iterations": [
            chaos_iteration(i, scenario) for i, scenario in enumerate(SCENARIOS)
        ],
        "acceptance": {
            "iterations_run": len(SCENARIOS),
            "zero_violations": True,
            "watchdog_fired": True,
            "drain_exercised": True,
            "deadline_exercised": True,
            "degradation_exercised": True,
            "all_byte_identical": True,
        },
    }


def test_valid_chaos_record_passes():
    assert validate_chaos_record(valid_chaos_record()) == []


def test_chaos_json_roundtrip_still_validates(tmp_path):
    path = tmp_path / "ROBUST_chaos.json"
    path.write_text(json.dumps(valid_chaos_record()))
    assert validate_chaos_record(json.loads(path.read_text())) == []


def test_chaos_wrong_schema_tag_rejected():
    record = valid_chaos_record()
    record["schema"] = "robust-chaos/v0"
    assert any("schema" in e for e in validate_chaos_record(record))


def test_chaos_empty_iterations_rejected():
    record = valid_chaos_record()
    record["iterations"] = []
    assert any("iterations" in e for e in validate_chaos_record(record))


@pytest.mark.parametrize("field", [
    "scenario", "fault_kinds", "stall_kills", "keys_byte_identical",
    "violations", "seconds",
])
def test_chaos_missing_iteration_field_rejected(field):
    record = valid_chaos_record()
    del record["iterations"][0][field]
    assert any(field in e for e in validate_chaos_record(record))


def test_chaos_unknown_scenario_rejected():
    record = valid_chaos_record()
    record["iterations"][0]["scenario"] = "meteor-strike"
    assert any("scenario" in e for e in validate_chaos_record(record))


def test_chaos_bool_masquerading_as_count_rejected():
    """`stall_kills: true` must not satisfy the int check (bool is a
    subclass of int — the validator has to reject it explicitly)."""
    record = valid_chaos_record()
    record["iterations"][0]["stall_kills"] = True
    assert any("stall_kills" in e for e in validate_chaos_record(record))


@pytest.mark.parametrize("field", [
    "zero_violations", "watchdog_fired", "drain_exercised",
    "deadline_exercised", "degradation_exercised", "all_byte_identical",
])
def test_chaos_missing_acceptance_bool_rejected(field):
    record = valid_chaos_record()
    del record["acceptance"][field]
    assert any(field in e for e in validate_chaos_record(record))


def test_committed_chaos_record_validates():
    """The checked-in ROBUST_chaos.json must satisfy its own schema and
    certify the soak's headline claims: every fault layer exercised,
    zero invariant violations, every run byte-identical (directly or
    via resume)."""
    path = Path(__file__).resolve().parent.parent / "ROBUST_chaos.json"
    record = json.loads(path.read_text())
    assert validate_chaos_record(record) == []
    acceptance = record["acceptance"]
    assert acceptance["iterations_run"] >= 50
    assert acceptance["zero_violations"] is True
    assert acceptance["watchdog_fired"] is True
    assert acceptance["drain_exercised"] is True
    assert acceptance["deadline_exercised"] is True
    assert acceptance["degradation_exercised"] is True
    assert acceptance["all_byte_identical"] is True


def test_committed_chaos_record_names_its_repro_command():
    """A failing nightly rotation must be reproducible with one pasted
    command — the artifact carries it alongside the seed."""
    path = Path(__file__).resolve().parent.parent / "ROBUST_chaos.json"
    record = json.loads(path.read_text())
    assert f"--seed {record['seed']}" in record["repro_command"]
    assert "benchmarks.chaos_soak" in record["repro_command"]


# ------------------------------------------------- robust-service/v1 schema


from benchmarks.service_soak import (  # noqa: E402
    SCENARIOS as SERVICE_SCENARIOS,
    SERVICE_SCHEMA,
    validate_service_record,
)


def service_iteration(iteration=0, scenario="kill-mid-job", violations=()):
    return {
        "iteration": iteration,
        "scenario": scenario,
        "jobs_submitted": 1,
        "jobs_rejected": 0,
        "server_starts": 2,
        "kills": 1,
        "terminal_states": {"DONE": 1},
        "identity_checks": 1,
        "byte_identical": True,
        "duplicate_side_effects": 0,
        "lost_jobs": [],
        "seconds": 4.2,
        "violations": list(violations),
    }


def valid_service_record():
    return {
        "schema": SERVICE_SCHEMA,
        "seed": 5,
        "n_shards": 8,
        "scan_workers": 2,
        "rotations": 3,
        "repro_command": (
            "PYTHONPATH=src python -m benchmarks.service_soak "
            "--seed 5 --rotations 3"),
        "iterations": [
            service_iteration(i, scenario)
            for i, scenario in enumerate(SERVICE_SCENARIOS)
        ],
        "acceptance": {
            "iterations_run": len(SERVICE_SCENARIOS),
            "zero_violations": True,
            "zero_lost_jobs": True,
            "zero_duplicate_side_effects": True,
            "all_resumed_byte_identical": True,
            "kill_exercised": True,
            "drain_exercised": True,
            "deadline_exercised": True,
            "rejection_exercised": True,
            "quarantine_exercised": True,
            "cancel_exercised": True,
        },
    }


def test_valid_service_record_passes():
    assert validate_service_record(valid_service_record()) == []


def test_service_wrong_schema_tag_rejected():
    record = valid_service_record()
    record["schema"] = "robust-service/v0"
    assert any("schema" in e for e in validate_service_record(record))


def test_service_empty_iterations_rejected():
    record = valid_service_record()
    record["iterations"] = []
    assert any("iterations" in e for e in validate_service_record(record))


@pytest.mark.parametrize("field", [
    "scenario", "kills", "terminal_states", "byte_identical",
    "duplicate_side_effects", "lost_jobs", "violations",
])
def test_service_missing_iteration_field_rejected(field):
    record = valid_service_record()
    del record["iterations"][0][field]
    assert any(field in e for e in validate_service_record(record))


def test_service_unknown_scenario_rejected():
    record = valid_service_record()
    record["iterations"][0]["scenario"] = "meteor-strike"
    assert any("scenario" in e for e in validate_service_record(record))


def test_service_bool_masquerading_as_count_rejected():
    record = valid_service_record()
    record["iterations"][0]["kills"] = True
    assert any("kills" in e for e in validate_service_record(record))


def test_service_missing_repro_command_rejected():
    record = valid_service_record()
    del record["repro_command"]
    assert any("repro_command" in e for e in validate_service_record(record))


@pytest.mark.parametrize("field", [
    "zero_violations", "zero_lost_jobs", "zero_duplicate_side_effects",
    "all_resumed_byte_identical", "kill_exercised", "drain_exercised",
    "deadline_exercised", "rejection_exercised", "quarantine_exercised",
    "cancel_exercised",
])
def test_service_missing_acceptance_bool_rejected(field):
    record = valid_service_record()
    del record["acceptance"][field]
    assert any(field in e for e in validate_service_record(record))


def test_committed_service_record_validates():
    """The checked-in ROBUST_service.json must satisfy its own schema
    and certify the job engine's headline claims: zero lost jobs, zero
    duplicated side effects, byte-identical resumed reports, and every
    failure mode actually exercised."""
    path = Path(__file__).resolve().parent.parent / "ROBUST_service.json"
    record = json.loads(path.read_text())
    assert validate_service_record(record) == []
    acceptance = record["acceptance"]
    assert acceptance["iterations_run"] >= 16
    assert acceptance["zero_violations"] is True
    assert acceptance["zero_lost_jobs"] is True
    assert acceptance["zero_duplicate_side_effects"] is True
    assert acceptance["all_resumed_byte_identical"] is True
    assert acceptance["kill_exercised"] is True
    assert acceptance["drain_exercised"] is True
    assert acceptance["deadline_exercised"] is True
    assert acceptance["rejection_exercised"] is True
    assert acceptance["quarantine_exercised"] is True
    assert acceptance["cancel_exercised"] is True
    assert f"--seed {record['seed']}" in record["repro_command"]


# --------------------------------------------------- robust-decay/v2 schema


def _robust_point(rate, seed_exact=0, exact=2, spurious=0, recovered=2,
                  confidence=0.5):
    return {
        "bit_error_rate": rate,
        "seed_exact_keys": seed_exact,
        "seed_keys_recovered": seed_exact,
        "adaptive_exact_keys": exact,
        "adaptive_spurious_keys": spurious,
        "adaptive_keys_recovered": recovered,
        "max_confidence": confidence,
        "confidences": [confidence] * recovered,
        "stages_run": ["strict", "decoded"],
        "work_spent": 5,
        "estimated_decay_rate": rate,
        "decay_source": "litmus-mismatch",
        "seed_seconds": 1.0,
        "adaptive_seconds": 2.0,
        "stage_seconds": {"strict": 1.0, "decoded": 1.0},
        "decode_tables": 4,
        "decode_iterations": 40,
        "decode_converged": 2,
        "decode_abstained": 2,
        "quarantined_regions": 0,
        "diagnostics": [],
    }


def _valid_robust_record():
    from benchmarks.robustness import ROBUST_SCHEMA, _acceptance

    points = [
        _robust_point(0.002, seed_exact=2, confidence=0.8),
        _robust_point(0.040, confidence=0.2),
        _robust_point(0.080, exact=0, recovered=0, confidence=0.0),
    ]
    return {
        "schema": ROBUST_SCHEMA,
        "seed": 5,
        "total_work": 10,
        "points": points,
        "acceptance": _acceptance(points),
    }


def test_valid_robust_record_passes():
    from benchmarks.robustness import validate_robust_record

    assert validate_robust_record(_valid_robust_record()) == []


def test_robust_wrong_schema_tag_rejected():
    from benchmarks.robustness import validate_robust_record

    record = _valid_robust_record()
    record["schema"] = "robust-decay/v1"
    assert any("schema" in e for e in validate_robust_record(record))


def test_robust_missing_point_field_rejected():
    from benchmarks.robustness import validate_robust_record

    record = _valid_robust_record()
    del record["points"][0]["decode_tables"]
    assert any("decode_tables" in e for e in validate_robust_record(record))


def test_robust_acceptance_requires_decode_bar():
    from benchmarks.robustness import validate_robust_record

    record = _valid_robust_record()
    del record["acceptance"]["exact_at_twice_classical_crossover"]
    assert any(
        "exact_at_twice_classical_crossover" in e
        for e in validate_robust_record(record)
    )


def test_robust_acceptance_semantics():
    from benchmarks.robustness import _acceptance

    accepted = _acceptance(_valid_robust_record()["points"])
    assert accepted["exact_at_twice_classical_crossover"] is True
    assert accepted["max_full_exact_rate"] == 0.040
    assert accepted["abstains_not_wrong"] is True
    # A point that recovers keys but none exact is a wrong answer, not
    # an abstain — the bar the decode stage must never cross.
    spurious = [_robust_point(0.06, exact=0, spurious=1, recovered=1)]
    assert _acceptance(spurious)["abstains_not_wrong"] is False
    assert _acceptance(spurious)["all_keys_byte_exact"] is False


def test_robust_baseline_gate_catches_regressions():
    from benchmarks.robustness import compare_to_baseline

    baseline = _valid_robust_record()
    fresh = _valid_robust_record()
    assert compare_to_baseline(fresh, baseline) == []
    # Losing an exact key at a shared rate is a regression...
    fresh["points"][1]["adaptive_exact_keys"] = 1
    assert any("exact keys fell" in p for p in compare_to_baseline(fresh, baseline))
    # ...and a new spurious key is one even when exactness holds.
    fresh["points"][1]["adaptive_exact_keys"] = 2
    fresh["points"][1]["adaptive_spurious_keys"] = 1
    assert any("spurious" in p for p in compare_to_baseline(fresh, baseline))
    # Grids may grow: rates only one record has are ignored.
    fresh = _valid_robust_record()
    fresh["points"].append(_robust_point(0.123, exact=0, recovered=0))
    assert compare_to_baseline(fresh, baseline) == []


def test_committed_robust_record_validates():
    """The checked-in ROBUST_decay.json must satisfy its own schema and
    certify the decoded-stage acceptance bar."""
    from benchmarks.robustness import validate_robust_record

    path = Path(__file__).resolve().parent.parent / "ROBUST_decay.json"
    record = json.loads(path.read_text())
    assert validate_robust_record(record) == []
    acceptance = record["acceptance"]
    assert acceptance["adaptive_beats_seed"] is True
    assert acceptance["all_keys_byte_exact"] is True
    assert acceptance["exact_at_twice_classical_crossover"] is True
    assert acceptance["abstains_not_wrong"] is True


# --------------------------------------------------- bench-decode/v1 schema


from benchmarks import decode_harness  # noqa: E402


def decode_stage(wall_s=0.3, workers=1):
    return {
        "wall_s": wall_s,
        "tables_per_s": 100.0,
        "sweeps": 120,
        "converged": 4,
        "abstained": 28,
        "workers": workers,
    }


def valid_decode_record(with_baseline=True):
    record = {
        "schema": decode_harness.BENCH_SCHEMA,
        "config": {
            "key_bits": 256,
            "batch": 32,
            "n_true": 4,
            "seed": 11,
            "bit_error_rate": 0.040,
            "max_iters": 72,
        },
        "stages": {
            "decode": decode_stage(),
            "decode_sharded": decode_stage(workers=2),
        },
        "baseline": None,
        "sharded_identical": True,
    }
    if with_baseline:
        record["baseline"] = {"decode": decode_stage(wall_s=5.0)}
        record["identical_keys"] = True
        record["identical_abstains"] = True
        record["speedup_vs_baseline"] = {"decode": 16.0, "decode_sharded": 14.0}
    return record


def test_valid_decode_record_passes():
    decode_harness.validate_bench_record(valid_decode_record())


def test_valid_decode_record_without_baseline_passes():
    decode_harness.validate_bench_record(valid_decode_record(with_baseline=False))


def test_decode_json_roundtrip_still_validates(tmp_path):
    path = tmp_path / "BENCH_decode.json"
    path.write_text(json.dumps(valid_decode_record()))
    decode_harness.validate_bench_record(json.loads(path.read_text()))


def test_decode_wrong_schema_tag_rejected():
    record = valid_decode_record()
    record["schema"] = BENCH_SCHEMA  # the scan schema is not the decode schema
    with pytest.raises(ValueError, match="schema"):
        decode_harness.validate_bench_record(record)


@pytest.mark.parametrize(
    "field", ["key_bits", "batch", "n_true", "seed", "bit_error_rate", "max_iters"]
)
def test_decode_missing_config_field_rejected(field):
    record = valid_decode_record()
    del record["config"][field]
    with pytest.raises(ValueError, match=field):
        decode_harness.validate_bench_record(record)


@pytest.mark.parametrize("field", decode_harness.STAGE_FIELDS)
def test_decode_missing_stage_field_rejected(field):
    record = valid_decode_record()
    del record["stages"]["decode"][field]
    with pytest.raises(ValueError, match=field):
        decode_harness.validate_bench_record(record)


def test_decode_negative_wall_time_rejected():
    record = valid_decode_record()
    record["stages"]["decode"]["wall_s"] = -0.1
    with pytest.raises(ValueError, match="wall_s"):
        decode_harness.validate_bench_record(record)


def test_decode_baseline_without_identity_gates_rejected():
    record = valid_decode_record()
    del record["identical_keys"]
    with pytest.raises(ValueError, match="identical_keys"):
        decode_harness.validate_bench_record(record)
    record = valid_decode_record()
    del record["identical_abstains"]
    with pytest.raises(ValueError, match="identical_abstains"):
        decode_harness.validate_bench_record(record)


def test_decode_baseline_without_speedups_rejected():
    record = valid_decode_record()
    del record["speedup_vs_baseline"]
    with pytest.raises(ValueError, match="speedup"):
        decode_harness.validate_bench_record(record)


def test_committed_decode_record_validates():
    """The checked-in BENCH_decode.json must satisfy its own schema and
    certify the decoded-stage acceptance bar: >= 5x over the frozen
    dense reference at BER 0.040 with identical keys and abstains."""
    path = Path(__file__).resolve().parent.parent / "BENCH_decode.json"
    record = json.loads(path.read_text())
    decode_harness.validate_bench_record(record)
    assert record["config"]["bit_error_rate"] == pytest.approx(0.040)
    assert record["identical_keys"] is True
    assert record["identical_abstains"] is True
    assert record["sharded_identical"] is True
    assert record["speedup_vs_baseline"]["decode"] >= 5.0
