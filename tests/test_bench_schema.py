"""Contract tests for the ``BENCH_scan.json`` schema (bench-scan/v1).

The harness's JSON records are consumed across sessions (CI artifacts,
perf-trajectory diffs), so the schema is pinned here: a record the
validator accepts today must keep validating, and the validator must
reject every mutation a refactor could plausibly introduce.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import (  # noqa: E402
    BENCH_SCHEMA,
    REQUIRED_STAGES,
    STAGE_FIELDS,
    validate_bench_record,
)


def stage_record(wall_s=1.5, workers=1):
    return {"wall_s": wall_s, "blocks_per_s": 1000.0, "keys": 4096, "workers": workers}


def valid_record(with_baseline=True):
    stages = {name: stage_record() for name in REQUIRED_STAGES}
    record = {
        "schema": BENCH_SCHEMA,
        "config": {"size_mib": 64, "workers": 4, "seed": 5, "bit_error_rate": 0.002},
        "stages": stages,
        "baseline": None,
    }
    if with_baseline:
        record["baseline"] = {name: stage_record(wall_s=6.0) for name in REQUIRED_STAGES}
        record["identical_keys"] = True
        record["speedup_vs_baseline"] = {"join": 4.0, "verify": 4.0, "end_to_end": 4.0}
    return record


def test_valid_record_passes():
    validate_bench_record(valid_record())


def test_valid_record_without_baseline_passes():
    validate_bench_record(valid_record(with_baseline=False))


def test_json_roundtrip_still_validates(tmp_path):
    path = tmp_path / "BENCH_scan.json"
    path.write_text(json.dumps(valid_record()))
    validate_bench_record(json.loads(path.read_text()))


def test_wrong_schema_tag_rejected():
    record = valid_record()
    record["schema"] = "bench-scan/v0"
    with pytest.raises(ValueError, match="schema"):
        validate_bench_record(record)


def test_missing_config_field_rejected():
    record = valid_record()
    del record["config"]["workers"]
    with pytest.raises(ValueError, match="workers"):
        validate_bench_record(record)


@pytest.mark.parametrize("stage", REQUIRED_STAGES)
def test_missing_stage_rejected(stage):
    record = valid_record()
    del record["stages"][stage]
    with pytest.raises(ValueError, match=stage):
        validate_bench_record(record)


@pytest.mark.parametrize("field", STAGE_FIELDS)
def test_missing_stage_field_rejected(field):
    record = valid_record()
    del record["stages"]["join"][field]
    with pytest.raises(ValueError, match=field):
        validate_bench_record(record)


def test_negative_wall_time_rejected():
    record = valid_record()
    record["stages"]["verify"]["wall_s"] = -0.1
    with pytest.raises(ValueError, match="wall_s"):
        validate_bench_record(record)


def test_zero_workers_rejected():
    record = valid_record()
    record["stages"]["end_to_end"]["workers"] = 0
    with pytest.raises(ValueError):
        validate_bench_record(record)


def test_baseline_without_speedups_rejected():
    record = valid_record()
    del record["speedup_vs_baseline"]
    with pytest.raises(ValueError, match="speedup"):
        validate_bench_record(record)


def test_baseline_without_identical_keys_rejected():
    record = valid_record()
    del record["identical_keys"]
    with pytest.raises(ValueError, match="identical_keys"):
        validate_bench_record(record)
