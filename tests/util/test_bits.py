"""Unit and property tests for bit-level helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bit,
    bytes_to_words16,
    extract_bits,
    hamming_distance,
    hamming_distance_arrays,
    hamming_weight,
    popcount8,
    words16_to_bytes,
    xor_bytes,
)


class TestPopcount:
    def test_known_values(self):
        assert popcount8(0) == 0
        assert popcount8(0xFF) == 8
        assert popcount8(0b10110010) == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            popcount8(256)
        with pytest.raises(ValueError):
            popcount8(-1)

    @given(st.integers(min_value=0, max_value=255))
    def test_matches_bin_count(self, value):
        assert popcount8(value) == bin(value).count("1")


class TestHamming:
    def test_identical_is_zero(self):
        assert hamming_distance(b"hello", b"hello") == 0

    def test_single_bit(self):
        assert hamming_distance(b"\x00", b"\x01") == 1
        assert hamming_distance(b"\x00", b"\x80") == 1

    def test_all_bits(self):
        assert hamming_distance(b"\x00" * 8, b"\xff" * 8) == 64

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance(b"ab", b"abc")

    def test_weight(self):
        assert hamming_weight(b"\x0f\xf0") == 8
        assert hamming_weight(b"") == 0

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_symmetry(self, a, b):
        n = min(len(a), len(b))
        assert hamming_distance(a[:n], b[:n]) == hamming_distance(b[:n], a[:n])

    @given(st.binary(min_size=1, max_size=64))
    def test_distance_equals_weight_of_xor(self, a):
        b = bytes(len(a))
        assert hamming_distance(a, b) == hamming_weight(a)

    def test_array_broadcast(self):
        reference = np.zeros(4, dtype=np.uint8)
        candidates = np.array([[0, 0, 0, 0], [255, 0, 0, 0], [1, 1, 1, 1]], dtype=np.uint8)
        distances = hamming_distance_arrays(candidates, reference)
        assert distances.tolist() == [0, 8, 4]


class TestXorBytes:
    def test_roundtrip(self):
        a, b = b"secret data!", b"pseudorandom"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"a", b"ab")

    @given(st.binary(min_size=0, max_size=128))
    def test_self_inverse(self, data):
        assert xor_bytes(data, data) == bytes(len(data))


class TestBitExtraction:
    def test_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0

    def test_extract_bits_identity(self):
        assert extract_bits(0b110101, (0, 1, 2, 3, 4, 5)) == 0b110101

    def test_extract_scattered(self):
        # bits 6..9 of 0b11_0100_0000 = value>>6 & 0xF
        value = 0x3FF << 6
        assert extract_bits(value, (6, 7, 8, 9)) == 0xF

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=0, max_value=30))
    def test_single_position(self, value, position):
        assert extract_bits(value, (position,)) == bit(value, position)


class TestWordPacking:
    def test_roundtrip(self):
        data = bytes(range(16))
        assert words16_to_bytes(bytes_to_words16(data)) == data

    def test_big_endian(self):
        assert bytes_to_words16(b"\x12\x34") == (0x1234,)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_words16(b"\x01\x02\x03")

    @given(st.binary(min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0))
    def test_roundtrip_property(self, data):
        assert words16_to_bytes(bytes_to_words16(data)) == data
