"""Tests for hexdump formatting."""

import pytest

from repro.util.hexdump import hexdump


def test_basic_line():
    out = hexdump(b"ABCDEF")
    assert "41 42 43 44 45 46" in out
    assert "|ABCDEF|" in out


def test_base_offsets_addresses():
    out = hexdump(bytes(16), base=0x1000)
    assert out.startswith("00001000")


def test_nonprintables_become_dots():
    out = hexdump(b"\x00\x7f\x80A")
    assert "|...A|" in out


def test_multiline():
    out = hexdump(bytes(40), width=16)
    assert len(out.splitlines()) == 3


def test_empty_input():
    assert hexdump(b"") == ""


def test_rejects_bad_width():
    with pytest.raises(ValueError):
        hexdump(b"abc", width=0)
