"""Tests for 64-byte block views."""

import numpy as np
import pytest

from repro.util.blocks import BLOCK_SIZE, as_block_matrix, iter_blocks, num_blocks


def test_block_size_is_ddr_burst():
    assert BLOCK_SIZE == 64


def test_num_blocks_ignores_tail():
    assert num_blocks(bytes(64)) == 1
    assert num_blocks(bytes(130)) == 2
    assert num_blocks(b"") == 0


def test_iter_blocks_yields_indexed_blocks():
    data = bytes(range(64)) + bytes(64)
    blocks = list(iter_blocks(data))
    assert blocks[0] == (0, bytes(range(64)))
    assert blocks[1] == (1, bytes(64))


def test_as_block_matrix_shape_and_content():
    data = bytes(range(256)) * 2
    matrix = as_block_matrix(data)
    assert matrix.shape == (8, 64)
    assert matrix.dtype == np.uint8
    assert bytes(matrix[0]) == data[:64]


def test_as_block_matrix_truncates_partial_tail():
    matrix = as_block_matrix(bytes(100))
    assert matrix.shape == (1, 64)


def test_as_block_matrix_accepts_ndarray():
    arr = np.arange(128, dtype=np.uint8)
    matrix = as_block_matrix(arr)
    assert matrix.shape == (2, 64)
    assert matrix[1, 0] == 64
