"""Tests for the deterministic seed/PRNG machinery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import SplitMix64, derive_seed


class TestSplitMix64:
    def test_deterministic(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_diverge(self):
        assert SplitMix64(1).next_u64() != SplitMix64(2).next_u64()

    def test_known_reference_value(self):
        # SplitMix64 reference: seed 0 produces 0xE220A8397B1DCDAF first.
        assert SplitMix64(0).next_u64() == 0xE220A8397B1DCDAF

    def test_next_bytes_length(self):
        assert len(SplitMix64(7).next_bytes(13)) == 13
        assert len(SplitMix64(7).next_bytes(0)) == 0

    def test_next_below_bounds(self):
        rng = SplitMix64(99)
        values = [rng.next_below(10) for _ in range(500)]
        assert all(0 <= v < 10 for v in values)
        assert len(set(values)) == 10  # all residues seen

    def test_next_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64(1).next_below(0)

    def test_next_float_in_unit_interval(self):
        rng = SplitMix64(5)
        for _ in range(100):
            value = rng.next_float()
            assert 0.0 <= value < 1.0

    def test_bit_balance(self):
        """Outputs should be roughly half ones (sanity, not rigor)."""
        rng = SplitMix64(123)
        ones = sum(bin(rng.next_u64()).count("1") for _ in range(200))
        assert 0.45 < ones / (200 * 64) < 0.55


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1, b"x") == derive_seed("a", 1, b"x")

    def test_order_sensitive(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_part_types(self):
        seeds = {derive_seed("s"), derive_seed(b"s"), derive_seed(123), derive_seed(-5)}
        assert len(seeds) == 4

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            derive_seed(1.5)  # type: ignore[arg-type]

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=4))
    def test_no_trivial_collisions(self, parts):
        shifted = [p + 1 for p in parts]
        assert derive_seed(*parts) != derive_seed(*shifted)
