"""Tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.gf2 import Gf2Matrix, nullspace_gf2, solve_gf2


def random_matrix(rows: int, cols: int, seed: int) -> tuple[Gf2Matrix, np.ndarray]:
    rng = np.random.default_rng(seed)
    dense = rng.integers(0, 2, (rows, cols), dtype=np.uint8)
    return Gf2Matrix.from_dense(dense), dense


class TestConstruction:
    def test_set_get_roundtrip(self):
        m = Gf2Matrix(3, 100)
        m.set(1, 70)
        assert m.get(1, 70) == 1
        assert m.get(1, 69) == 0
        m.set(1, 70, 0)
        assert m.get(1, 70) == 0

    def test_from_dense_roundtrip(self):
        matrix, dense = random_matrix(10, 130, seed=1)
        assert np.array_equal(matrix.to_dense(), dense)

    def test_bounds_checked(self):
        m = Gf2Matrix(2, 10)
        with pytest.raises(IndexError):
            m.get(2, 0)
        with pytest.raises(IndexError):
            m.set(0, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            Gf2Matrix(1, 0)


class TestElimination:
    def test_identity_has_full_rank(self):
        m = Gf2Matrix.from_dense(np.eye(8, dtype=np.uint8))
        assert m.rank() == 8

    def test_duplicate_rows_reduce_rank(self):
        dense = np.ones((4, 6), dtype=np.uint8)
        assert Gf2Matrix.from_dense(dense).rank() == 1

    def test_zero_matrix_rank_zero(self):
        assert Gf2Matrix(5, 5).rank() == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_rank_bounded(self, seed):
        matrix, _ = random_matrix(12, 20, seed)
        assert 0 <= matrix.rank() <= 12

    def test_rank_invariant_under_row_xor(self):
        matrix, _ = random_matrix(8, 16, seed=3)
        before = matrix.rank()
        matrix.xor_rows(0, 1)
        assert matrix.rank() == before


class TestSolve:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_solution_satisfies_system(self, seed):
        matrix, dense = random_matrix(10, 14, seed)
        rng = np.random.default_rng(seed + 1)
        x_true = rng.integers(0, 2, 14, dtype=np.uint8)
        b = (dense @ x_true) & 1
        x = solve_gf2(matrix, b)
        assert x is not None
        assert np.array_equal((dense @ x) & 1, b)

    def test_inconsistent_system_returns_none(self):
        # x = 0 and x = 1 simultaneously.
        matrix = Gf2Matrix.from_dense([[1], [1]])
        assert solve_gf2(matrix, [0, 1]) is None

    def test_rhs_length_validated(self):
        matrix = Gf2Matrix(2, 3)
        with pytest.raises(ValueError):
            solve_gf2(matrix, [1])


class TestNullspace:
    def test_dimension_matches_rank_nullity(self):
        matrix, _ = random_matrix(10, 16, seed=9)
        assert len(nullspace_gf2(matrix)) == 16 - matrix.rank()

    def test_basis_vectors_in_kernel(self):
        matrix, dense = random_matrix(6, 12, seed=11)
        for vector in nullspace_gf2(matrix):
            assert not np.any((dense @ vector) & 1)

    def test_full_rank_square_has_trivial_kernel(self):
        matrix = Gf2Matrix.from_dense(np.eye(6, dtype=np.uint8))
        assert nullspace_gf2(matrix) == []
