"""Tests for the exposed-latency analysis (Figure 5 / §IV-C)."""

import pytest

from repro.dram.timing import JEDEC_CAS_LATENCIES_NS, MIN_CAS_LATENCY_NS
from repro.engine.pipeline import exposed_latency, exposure_table, viable_replacements


class TestViability:
    def test_three_viable_engines_at_fastest_cas(self):
        """§IV-C: AES-128, AES-256 and ChaCha8 fit under 12.5 ns."""
        assert set(viable_replacements(12.5)) == {"AES-128", "AES-256", "ChaCha8"}

    def test_chacha12_viable_only_at_slow_bins(self):
        assert "ChaCha12" not in viable_replacements(12.5)
        assert "ChaCha12" in viable_replacements(15.01)

    def test_chacha20_never_viable(self):
        for cas in JEDEC_CAS_LATENCIES_NS:
            assert "ChaCha20" not in viable_replacements(cas)


class TestExposedLatency:
    def test_chacha8_fully_hidden(self):
        result = exposed_latency("ChaCha8", MIN_CAS_LATENCY_NS)
        assert result.is_hidden
        assert result.exposed_ns == 0.0
        assert result.slack_ns == pytest.approx(12.5 - 9.18, abs=0.01)

    def test_chacha20_exposure(self):
        result = exposed_latency("ChaCha20", 12.5)
        assert result.exposed_ns == pytest.approx(21.43 - 12.5, abs=0.03)
        assert not result.is_hidden

    def test_rejects_bad_cas(self):
        with pytest.raises(ValueError):
            exposed_latency("ChaCha8", 0)


class TestExposureTable:
    def test_covers_full_grid(self):
        table = exposure_table()
        assert len(table) == 5 * 9

    def test_every_standard_bin_in_range(self):
        for entry in exposure_table():
            assert 12.5 <= entry.cas_latency_ns <= 15.01
