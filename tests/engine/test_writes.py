"""Tests for the write-path analysis (§IV-B)."""

import pytest

from repro.dram.timing import DDR4_2400, DdrBusTiming
from repro.engine.ciphers import ENGINE_SPECS
from repro.engine.writes import (
    all_engines_bus_limited,
    analyze_write_path,
    write_buffer_fill_time_ns,
)


class TestThroughputVerdict:
    def test_no_engine_is_crypto_limited_on_ddr4_2400(self):
        """§IV-B: every engine encrypts faster than the bus can drain."""
        assert all_engines_bus_limited()

    @pytest.mark.parametrize("name", list(ENGINE_SPECS))
    def test_margin_at_least_unity(self, name):
        analysis = analyze_write_path(name)
        assert analysis.throughput_margin >= 1.0
        assert not analysis.crypto_limited

    def test_chacha8_has_huge_margin(self):
        # 64 B per initiation at 1.96 GHz = 125 GB/s vs 19.2 GB/s bus.
        assert analyze_write_path("ChaCha8").throughput_margin > 6.0

    def test_hypothetical_faster_bus_can_flip_aes(self):
        """Sanity: the verdict is not vacuous — a fast enough bus would
        out-run AES's 38.4 GB/s keystream rate."""
        hyper_bus = DdrBusTiming("DDR5-10000ish", io_clock_ghz=2.5)
        assert hyper_bus.peak_bandwidth_gbs > 38.4
        assert analyze_write_path("AES-128", hyper_bus).crypto_limited


class TestWriteBuffer:
    def test_light_store_traffic_never_fills(self):
        assert write_buffer_fill_time_ns("ChaCha8", 64, store_interarrival_ns=10.0) is None

    def test_oversubscribed_stores_fill_eventually(self):
        fill = write_buffer_fill_time_ns("ChaCha8", 64, store_interarrival_ns=1.0)
        assert fill is not None and fill > 0

    def test_deeper_buffer_lasts_longer(self):
        shallow = write_buffer_fill_time_ns("AES-128", 16, store_interarrival_ns=1.0)
        deep = write_buffer_fill_time_ns("AES-128", 64, store_interarrival_ns=1.0)
        assert shallow is not None and deep is not None
        assert deep > shallow

    def test_encryption_does_not_change_drain_rate(self):
        """The drain bound is the bus for every engine, so fill times are
        engine-independent — encryption costs nothing on the write path."""
        times = {
            name: write_buffer_fill_time_ns(name, 32, store_interarrival_ns=2.0)
            for name in ENGINE_SPECS
        }
        assert len({round(t, 6) for t in times.values()}) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            write_buffer_fill_time_ns("ChaCha8", 0, 1.0)
        with pytest.raises(ValueError):
            write_buffer_fill_time_ns("ChaCha8", 8, 0.0)
