"""Tests for the SGX-class MEE comparison model (§IV-A)."""

import pytest

from repro.engine.sgx_model import SgxLikeEngine, security_performance_table


class TestMeeGeometry:
    def test_tree_depth(self):
        # 96 MiB / 64 B = 1.5M leaves; arity 8 -> 7 levels.
        assert SgxLikeEngine().tree_levels == 7

    def test_smaller_region_shallower_tree(self):
        small = SgxLikeEngine(protected_bytes=1 << 20)
        assert small.tree_levels < SgxLikeEngine().tree_levels

    def test_validation(self):
        with pytest.raises(ValueError):
            SgxLikeEngine(protected_bytes=0)
        with pytest.raises(ValueError):
            SgxLikeEngine(metadata_cache_hit_rate=1.5)


class TestOverheadRange:
    def test_matches_scone_range(self):
        """§IV-A: 'a performance penalty ranging from a few percents to
        12x depending on the access pattern and working set size'."""
        best = SgxLikeEngine(metadata_cache_hit_rate=0.99).slowdown_vs_plain()
        worst = SgxLikeEngine(metadata_cache_hit_rate=0.0).slowdown_vs_plain()
        assert 1.0 < best < 1.5
        assert 10.0 < worst < 13.0

    def test_cache_monotone(self):
        slowdowns = [
            SgxLikeEngine(metadata_cache_hit_rate=h).slowdown_vs_plain()
            for h in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert slowdowns == sorted(slowdowns, reverse=True)


class TestComparisonTable:
    def test_structure(self):
        rows = security_performance_table()
        assert len(rows) == 5
        by_scheme = {r.scheme: r for r in rows}
        paper = by_scheme["ChaCha8 memory encryption (this paper)"]
        scrambler = by_scheme["scrambler (status quo)"]
        assert paper.confidentiality and not scrambler.confidentiality
        assert paper.slowdown == 1.0 and paper.exposed_latency_ns == 0.0
        assert not paper.integrity and not paper.replay_protection

    def test_sgx_rows_pay_for_integrity(self):
        rows = security_performance_table()
        sgx_rows = [r for r in rows if r.integrity]
        assert sgx_rows
        assert all(r.replay_protection for r in sgx_rows)
        assert all(r.slowdown > 1.0 for r in sgx_rows)
