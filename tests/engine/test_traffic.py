"""Tests for the traffic generators."""

import pytest

from repro.dram.address import address_map_for
from repro.dram.bus import DdrChannelSimulator
from repro.engine.traffic import bursty_reads, profile, random_reads, streaming_reads


class TestGenerators:
    def test_streaming_is_sequential(self):
        reads = streaming_reads(16, interarrival_ns=10.0)
        addresses = [r.physical_address for r in reads]
        assert addresses == [i * 64 for i in range(16)]

    def test_streaming_mostly_row_hits(self):
        sim = DdrChannelSimulator(address_map_for("skylake"))
        sim.schedule(streaming_reads(64, interarrival_ns=10.0))
        assert sim.row_hit_rate > 0.9

    def test_random_spreads_addresses(self):
        reads = random_reads(256, 10.0, memory_bytes=1 << 24, seed=1)
        assert len({r.physical_address for r in reads}) > 200

    def test_random_mostly_row_misses(self):
        sim = DdrChannelSimulator(address_map_for("skylake"))
        sim.schedule(random_reads(128, 60.0, memory_bytes=1 << 26, seed=2))
        assert sim.row_hit_rate < 0.3

    def test_bursty_structure(self):
        reads = bursty_reads(4, burst_length=8, idle_gap_ns=500.0, memory_bytes=1 << 22)
        arrivals = sorted({r.arrival_ns for r in reads})
        assert len(reads) == 32
        assert arrivals == [0.0, 500.0, 1000.0, 1500.0]

    def test_determinism(self):
        a = random_reads(32, 5.0, 1 << 20, seed="x")
        b = random_reads(32, 5.0, 1 << 20, seed="x")
        assert a == b


class TestProfile:
    def test_offered_bandwidth(self):
        reads = streaming_reads(101, interarrival_ns=10.0)
        stats = profile(reads)
        # 101 blocks over a 1000 ns span (first to last arrival).
        assert stats.offered_bandwidth_gbs == pytest.approx(101 * 64 / 1000.0)

    def test_empty(self):
        assert profile([]).offered_bandwidth_gbs == 0.0


class TestValidation:
    def test_bad_counts(self):
        with pytest.raises(ValueError):
            streaming_reads(0, 1.0)
        with pytest.raises(ValueError):
            random_reads(1, 0.0, 1 << 20)
        with pytest.raises(ValueError):
            bursty_reads(1, 100, 0.0, memory_bytes=64 * 10)

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            streaming_reads(4, 1.0, stride_bytes=100)
