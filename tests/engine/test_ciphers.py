"""Tests for the cipher-engine specs against Table II."""

import pytest

from repro.engine.ciphers import ENGINE_SPECS, TABLE_II_PUBLISHED, CipherEngineSpec


class TestTableII:
    @pytest.mark.parametrize("name", list(TABLE_II_PUBLISHED))
    def test_frequency_matches(self, name):
        freq, _, _ = TABLE_II_PUBLISHED[name]
        assert ENGINE_SPECS[name].max_frequency_ghz == freq

    @pytest.mark.parametrize("name", list(TABLE_II_PUBLISHED))
    def test_cycles_match(self, name):
        """The structural cycle model reproduces the published counts."""
        _, cycles, _ = TABLE_II_PUBLISHED[name]
        assert ENGINE_SPECS[name].cycles_per_block == cycles

    @pytest.mark.parametrize("name", list(TABLE_II_PUBLISHED))
    def test_pipeline_delay_matches(self, name):
        _, _, delay = TABLE_II_PUBLISHED[name]
        assert ENGINE_SPECS[name].pipeline_delay_ns == pytest.approx(delay, abs=0.03)


class TestStructuralModel:
    def test_aes_counts_injection_cycles(self):
        """cycles/64B = rounds + 3 extra counters for the AES family."""
        assert ENGINE_SPECS["AES-128"].cycles_per_block == 10 + 3
        assert ENGINE_SPECS["AES-256"].cycles_per_block == 14 + 3

    def test_chacha_two_stages_per_round(self):
        assert ENGINE_SPECS["ChaCha8"].cycles_per_block == 2 * 8 + 2
        assert ENGINE_SPECS["ChaCha20"].cycles_per_block == 2 * 20 + 2

    def test_counters_per_block(self):
        assert ENGINE_SPECS["AES-128"].counters_per_block == 4
        assert ENGINE_SPECS["ChaCha8"].counters_per_block == 1

    def test_aes_throughput_matches_paper(self):
        """The paper quotes ~39 GB/s for the 1-cycle-per-round AES."""
        assert ENGINE_SPECS["AES-128"].throughput_gb_per_s == pytest.approx(38.4)

    def test_chacha_outruns_any_ddr4_bus(self):
        # 64B per initiation at 1.96 GHz vastly exceeds 19.2 GB/s bus peak.
        assert ENGINE_SPECS["ChaCha8"].throughput_gb_per_s > 19.2

    def test_validation(self):
        with pytest.raises(ValueError):
            CipherEngineSpec("x", "des", 16, 1.0, 1, 0.1, 0.1, 0.1)
        with pytest.raises(ValueError):
            CipherEngineSpec("x", "aes", 0, 1.0, 4, 0.1, 0.1, 0.1)
