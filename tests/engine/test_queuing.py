"""Tests for the load/queueing simulation (Figure 6)."""

import pytest

from repro.dram.timing import DDR4_2400
from repro.engine.queuing import LoadPoint, load_sweep, simulate_burst


class TestFigure6Shape:
    def test_chacha8_flat_and_hidden_at_all_loads(self):
        """The paper's headline: ChaCha8 beats 12.5 ns under all loads."""
        for n in range(1, 19):
            point = simulate_burst("ChaCha8", n)
            assert point.decryption_latency_ns == pytest.approx(9.18, abs=0.01)
            assert point.exposed_ns == 0.0

    def test_aes_wins_at_low_load(self):
        """At few outstanding requests AES-128 is the fastest engine."""
        aes = simulate_burst("AES-128", 1).decryption_latency_ns
        chacha = simulate_burst("ChaCha8", 1).decryption_latency_ns
        assert aes < chacha

    def test_aes_queues_at_high_load(self):
        latencies = [simulate_burst("AES-128", n).decryption_latency_ns for n in range(1, 19)]
        assert latencies == sorted(latencies)
        assert latencies[-1] > latencies[0]

    def test_aes128_worst_case_exposure_about_1_3ns(self):
        """The paper: 'a worst case exposed latency of 1.3ns'."""
        worst = simulate_burst("AES-128", 18)
        assert worst.exposed_ns == pytest.approx(1.3, abs=0.2)

    def test_aes_crosses_chacha8_under_load(self):
        """The Figure 6 crossover: AES starts ahead, ends behind."""
        low_aes = simulate_burst("AES-128", 2).decryption_latency_ns
        low_chacha = simulate_burst("ChaCha8", 2).decryption_latency_ns
        high_aes = simulate_burst("AES-128", 18).decryption_latency_ns
        high_chacha = simulate_burst("ChaCha8", 18).decryption_latency_ns
        assert low_aes < low_chacha
        assert high_aes > high_chacha

    def test_chacha20_constant_exposure(self):
        exposures = {round(simulate_burst("ChaCha20", n).exposed_ns, 3) for n in (1, 9, 18)}
        assert len(exposures) == 1
        assert exposures.pop() > 8.0

    def test_aes256_worse_than_aes128(self):
        assert (
            simulate_burst("AES-256", 18).exposed_ns
            > simulate_burst("AES-128", 18).exposed_ns
        )


class TestSweepMechanics:
    def test_full_sweep_dimensions(self):
        points = load_sweep()
        assert len(points) == 5 * 18  # engines x outstanding requests

    def test_utilisation_normalised(self):
        assert simulate_burst("ChaCha8", 9).bandwidth_utilisation == pytest.approx(0.5)

    def test_unloaded_latency_equals_table2(self):
        for name, expected in (("AES-128", 5.42), ("ChaCha8", 9.18)):
            assert simulate_burst(name, 1).decryption_latency_ns == pytest.approx(expected, abs=0.01)

    def test_rejects_zero_requests(self):
        with pytest.raises(ValueError):
            simulate_burst("AES-128", 0)

    def test_max_outstanding_follows_bus(self):
        assert max(p.outstanding_requests for p in load_sweep()) == DDR4_2400.max_back_to_back_cas()
