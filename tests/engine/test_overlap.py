"""Tests for the measured keystream/DRAM overlap simulation."""

import pytest

from repro.dram.address import address_map_for
from repro.dram.bus import DdrChannelSimulator
from repro.engine.overlap import overlap_comparison, simulate_overlap
from repro.engine.traffic import bursty_reads, random_reads, streaming_reads


def fresh_simulator() -> DdrChannelSimulator:
    return DdrChannelSimulator(address_map_for("skylake"))


class TestChaCha8ZeroExposure:
    def test_streaming_traffic(self):
        result = simulate_overlap(
            "ChaCha8", streaming_reads(128, 10.0), fresh_simulator()
        )
        assert result.max_exposed_ns == 0.0
        assert result.hidden_fraction == 1.0

    def test_random_traffic(self):
        result = simulate_overlap(
            "ChaCha8", random_reads(128, 20.0, 1 << 26, seed=1), fresh_simulator()
        )
        assert result.max_exposed_ns == 0.0

    def test_saturating_bursts(self):
        """The Figure 6 worst case through the full command-level model."""
        reads = bursty_reads(8, burst_length=18, idle_gap_ns=200.0, memory_bytes=1 << 24)
        result = simulate_overlap("ChaCha8", reads, fresh_simulator())
        assert result.max_exposed_ns == 0.0


class TestChaCha20AlwaysExposed:
    def test_even_idle_traffic_exposes(self):
        result = simulate_overlap(
            "ChaCha20", streaming_reads(32, 1000.0), fresh_simulator()
        )
        assert result.hidden_fraction == 0.0
        assert result.mean_exposed_ns > 8.0


class TestAesUnderLoad:
    def test_aes_hidden_at_low_load(self):
        result = simulate_overlap(
            "AES-128", streaming_reads(32, 100.0), fresh_simulator()
        )
        assert result.max_exposed_ns == 0.0

    def test_aes_exposes_under_saturating_bursts(self):
        reads = bursty_reads(4, burst_length=18, idle_gap_ns=100.0, memory_bytes=1 << 24)
        aes = simulate_overlap("AES-128", reads, fresh_simulator())
        chacha = simulate_overlap("ChaCha8", reads, fresh_simulator())
        assert aes.max_exposed_ns > chacha.max_exposed_ns
        assert aes.max_exposed_ns < 3.0  # worst case stays small (≈1.3 ns figure)


class TestComparison:
    def test_all_engines_same_channel_stats(self):
        reads = streaming_reads(64, 5.0)
        results = overlap_comparison(reads, fresh_simulator)
        assert len(results) == 5
        hit_rates = {round(r.row_hit_rate, 6) for r in results}
        assert len(hit_rates) == 1  # identical traffic, identical channel

    def test_ordering_matches_pipeline_delays(self):
        """With idle traffic exposure ordering follows Table II delays."""
        reads = streaming_reads(32, 500.0)
        results = {r.engine: r for r in overlap_comparison(reads, fresh_simulator)}
        assert results["ChaCha20"].mean_exposed_ns > results["ChaCha12"].mean_exposed_ns
        assert results["ChaCha12"].mean_exposed_ns >= 0.0
        assert results["AES-128"].mean_exposed_ns == 0.0
