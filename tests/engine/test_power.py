"""Tests for the power/area overhead model (Figure 7)."""

import pytest

from repro.engine.power import CPU_PROFILES, CpuProfile, estimate_overhead, overhead_grid


class TestFigure7Claims:
    def test_area_overhead_at_most_about_1_percent(self):
        """'In all cases, the area overheads are about or below 1%.'"""
        for estimate in overhead_grid():
            assert estimate.area_overhead_percent <= 1.05

    def test_power_below_3_percent_except_atom(self):
        for estimate in overhead_grid(utilisations=(1.0,)):
            if estimate.cpu != "Atom N280":
                assert estimate.power_overhead_percent < 3.0

    def test_atom_peaks_near_17_percent(self):
        worst = max(
            estimate_overhead("Atom N280", engine, 1.0).power_overhead_percent
            for engine in ("AES-128", "ChaCha8")
        )
        assert 14.0 <= worst <= 17.5

    def test_atom_realistic_load_below_6_percent(self):
        """'Under more realistic workloads... below 6%.'"""
        for engine in ("AES-128", "ChaCha8"):
            overhead = estimate_overhead("Atom N280", engine, 0.2).power_overhead_percent
            assert overhead < 6.0

    def test_atom_area_highest(self):
        """The small Atom die pays the (relatively) largest area cost."""
        atom = estimate_overhead("Atom N280", "ChaCha8").area_overhead
        others = [
            estimate_overhead(name, "ChaCha8").area_overhead
            for name in CPU_PROFILES
            if name != "Atom N280"
        ]
        assert all(atom > other for other in others)


class TestModelMechanics:
    def test_one_engine_per_channel(self):
        xeon = estimate_overhead("Xeon W3520", "ChaCha8")
        atom = estimate_overhead("Atom N280", "ChaCha8")
        assert xeon.area_mm2 == pytest.approx(3 * atom.area_mm2)

    def test_dynamic_power_scales_with_utilisation(self):
        full = estimate_overhead("Core i5-700", "AES-128", 1.0).power_w
        idle = estimate_overhead("Core i5-700", "AES-128", 0.0).power_w
        fifth = estimate_overhead("Core i5-700", "AES-128", 0.2).power_w
        assert idle < fifth < full
        assert fifth == pytest.approx(idle + 0.2 * (full - idle))

    def test_four_cpus_as_in_figure(self):
        assert len(CPU_PROFILES) == 4
        segments = {p.segment for p in CPU_PROFILES.values()}
        assert {"mobile", "server"} <= segments

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_overhead("Atom N280", "ChaCha8", utilisation=1.5)
        with pytest.raises(ValueError):
            CpuProfile("x", "mobile", tdp_w=-1, die_area_mm2=10, memory_channels=1)

    def test_grid_shape(self):
        assert len(overhead_grid()) == 4 * 2 * 2
