"""Tests for the time-multiplexed mobile engine variants (§IV-C)."""

import pytest

from repro.engine.ciphers import ENGINE_SPECS
from repro.engine.mobile import (
    MOBILE_MAX_OUTSTANDING,
    mobile_tradeoff_sweep,
    time_multiplexed,
)


class TestTimeMultiplexing:
    def test_identity_at_factor_one(self):
        variant = time_multiplexed("ChaCha8", 1)
        base = ENGINE_SPECS["ChaCha8"]
        assert variant.pipeline_delay_ns == base.pipeline_delay_ns
        assert variant.area_mm2 == base.area_mm2

    def test_cycles_scale_with_reuse(self):
        base = ENGINE_SPECS["ChaCha8"]
        variant = time_multiplexed(base, 4)
        assert variant.pipeline_delay_ns > 3 * base.pipeline_delay_ns

    def test_power_and_area_shrink(self):
        base = ENGINE_SPECS["AES-128"]
        variant = time_multiplexed(base, base.rounds)
        assert variant.area_mm2 < base.area_mm2
        assert variant.dynamic_power_w < base.dynamic_power_w
        # The 20% shared-datapath floor is respected.
        assert variant.area_mm2 > 0.19 * base.area_mm2

    def test_reuse_factor_validated(self):
        with pytest.raises(ValueError):
            time_multiplexed("ChaCha8", 0)
        with pytest.raises(ValueError):
            time_multiplexed("ChaCha8", 9)


class TestTradeoffSweep:
    def test_sweep_shape(self):
        verdicts = mobile_tradeoff_sweep()
        assert len(verdicts) == 4
        # Savings grow with the reuse factor...
        savings = [v.power_saving_fraction for v in verdicts]
        assert savings == sorted(savings)
        # ...and so does exposure: the §IV-C trade-off in one line.
        exposures = [v.exposed_ns_at_mobile_load for v in verdicts]
        assert exposures == sorted(exposures)

    def test_baseline_stays_hidden(self):
        verdicts = mobile_tradeoff_sweep(reuse_factors=(1,))
        assert verdicts[0].hidden
        assert verdicts[0].power_saving_fraction == pytest.approx(0.0)

    def test_mobile_load_is_shallow(self):
        assert MOBILE_MAX_OUTSTANDING <= 4
