"""Focused tests for the search's decay-hardening internals."""

import numpy as np
import pytest

from repro.attack.aes_search import (
    AesKeySearch,
    AesVariant,
    repair_observed_table,
)
from repro.attack.sweep import synthetic_dump
from repro.crypto.aes import expand_key
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.bits import POPCOUNT_TABLE
from repro.util.rng import SplitMix64


class TestRepairObservedTable:
    def _noisy_schedule(self, n_flips: int, seed: int = 1) -> tuple[np.ndarray, np.ndarray]:
        key = SplitMix64(seed).next_bytes(32)
        clean = np.frombuffer(expand_key(key), dtype=np.uint8)
        noisy = clean.copy()
        rng = SplitMix64(seed + 1)
        flipped = set()
        while len(flipped) < n_flips:
            flipped.add(rng.next_below(len(noisy) * 8))
        for bit in flipped:
            noisy[bit // 8] ^= 0x80 >> (bit % 8)
        return clean, noisy

    def test_clean_schedule_untouched(self):
        clean, _ = self._noisy_schedule(0)
        assert np.array_equal(repair_observed_table(clean.copy(), 256), clean)

    @pytest.mark.parametrize("n_flips", [1, 3, 6])
    def test_scattered_errors_reduced(self, n_flips):
        clean, noisy = self._noisy_schedule(n_flips, seed=n_flips)
        repaired = repair_observed_table(noisy, 256)
        before = int(POPCOUNT_TABLE[noisy ^ clean].sum())
        after = int(POPCOUNT_TABLE[repaired ^ clean].sum())
        assert after <= before  # never makes things worse overall
        if n_flips <= 3:
            assert after < before or after == 0  # usually heals

    def test_respects_known_mask(self):
        clean, noisy = self._noisy_schedule(4, seed=9)
        known = np.ones(len(noisy), dtype=bool)
        known[64:128] = False  # pretend a block's key was missing
        repaired = repair_observed_table(noisy, 256, known_bytes=known)
        assert len(repaired) == len(noisy)

    def test_short_table_passthrough(self):
        stub = np.zeros(16, dtype=np.uint8)
        assert np.array_equal(repair_observed_table(stub, 256), stub)


class TestRecoverAtBase:
    def test_finds_schedule_at_known_base(self):
        scrambler = Ddr4Scrambler(boot_seed=12)
        master = SplitMix64(3).next_bytes(32)
        plain = bytearray(SplitMix64(4).next_bytes(128 * 64))
        base = 60 * 64 + 19
        plain[base : base + 240] = expand_key(master)
        dump = MemoryImage(scrambler.scramble_range(0, bytes(plain)))
        keys = [scrambler.key_for_address(b * 64) for b in range(58, 68)]
        search = AesKeySearch(keys, key_bits=256)
        result = search.recover_at_base(dump, base)
        assert result is not None
        assert result.master_key == master

    def test_wrong_base_returns_none(self):
        scrambler = Ddr4Scrambler(boot_seed=13)
        dump = MemoryImage(scrambler.scramble_range(0, SplitMix64(5).next_bytes(64 * 64)))
        keys = [scrambler.key_for_address(b * 64) for b in range(16)]
        search = AesKeySearch(keys, key_bits=256)
        assert search.recover_at_base(dump, 10 * 64) is None

    def test_out_of_image_base_returns_none(self):
        scrambler = Ddr4Scrambler(boot_seed=14)
        dump = MemoryImage(scrambler.scramble_range(0, bytes(16 * 64)))
        search = AesKeySearch([scrambler.key_for_address(0)], key_bits=256)
        assert search.recover_at_base(dump, -100) is None
        assert search.recover_at_base(dump, 15 * 64) is None  # runs off the end


class TestOverlapCompetition:
    def test_adjacent_schedules_both_survive(self):
        """An XTS pair (bases 240 apart) must never compete."""
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=21)
        from repro.attack.keymine import keys_matrix, mine_scrambler_keys

        search = AesKeySearch(keys_matrix(mine_scrambler_keys(dump)), key_bits=256)
        recovered = search.recover_keys(dump)
        masters = {r.master_key for r in recovered}
        assert master[:32] in masters and master[32:] in masters

    def test_alias_bases_filtered(self):
        """Shifted odd-round aliases of one schedule yield ONE key."""
        scrambler = Ddr4Scrambler(boot_seed=31)
        master = b"\x2f" * 32
        plain = bytearray(SplitMix64(6).next_bytes(256 * 64))
        plain[77 * 64 + 3 : 77 * 64 + 3 + 240] = expand_key(master)
        dump = MemoryImage(scrambler.scramble_range(0, bytes(plain)))
        keys = [scrambler.key_for_address(b * 64) for b in range(74, 84)]
        recovered = AesKeySearch(keys, key_bits=256).recover_keys(dump)
        assert [r.master_key for r in recovered] == [master]
        assert recovered[0].region_agreement > 0.99


class TestVariantOffsets:
    def test_aes128_scans_more_offsets(self):
        """Shorter spans allow (and get) more window offsets."""
        search128 = AesKeySearch([bytes(64)], key_bits=128)
        search256 = AesKeySearch([bytes(64)], key_bits=256)
        assert len(search128.offsets) == 32
        assert len(search256.offsets) == 17
        assert max(search128.offsets) + AesVariant(128).span_bytes <= 64
        assert max(search256.offsets) + AesVariant(256).span_bytes <= 64
