"""Property tests on the attack toolkit's core guarantees."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attack.aes_search import AesVariant, reconstruct_schedule
from repro.attack.keyfind import find_aes_keys, unique_master_keys
from repro.attack.litmus import key_litmus_mismatch_bits, passes_key_litmus
from repro.crypto.aes import expand_key, expand_key_words
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.bits import words16_to_bytes


class TestLitmusProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        words=st.lists(
            st.integers(min_value=0, max_value=0xFFFF), min_size=16, max_size=16
        ),
        deltas=st.lists(
            st.integers(min_value=0, max_value=0xFFFF), min_size=4, max_size=4
        ),
    )
    def test_structured_blocks_always_pass(self, words, deltas):
        """Any block built as (w0..w3, w0^D..w3^D) x 4 passes the litmus.

        This is the invariant manifold: the litmus test accepts exactly
        the blocks with this structure (plus Hamming slack).
        """
        sub_blocks = []
        for s in range(4):
            first = words[4 * s : 4 * s + 4]
            sub_blocks.append(
                words16_to_bytes(first + [w ^ deltas[s] for w in first])
            )
        assert passes_key_litmus(b"".join(sub_blocks))

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**62),
        flips=st.lists(st.integers(min_value=0, max_value=511), min_size=1, max_size=3),
    )
    def test_mismatch_grows_with_damage(self, seed, flips):
        """Flipping key bits never decreases the litmus mismatch count."""
        key = bytearray(Ddr4Scrambler(boot_seed=seed).key_for(0, 7))
        clean = int(key_litmus_mismatch_bits(bytes(key))[0])
        assert clean == 0
        for bit in flips:
            key[bit // 8] ^= 0x80 >> (bit % 8)
        assert int(key_litmus_mismatch_bits(bytes(key))[0]) >= 0

    @settings(max_examples=30, deadline=None)
    @given(constant=st.integers(min_value=0, max_value=0xFFFF))
    def test_word_constant_blocks_pass(self, constant):
        """Any repeated-16-bit-word block passes (the known FP class)."""
        block = constant.to_bytes(2, "big") * 32
        assert passes_key_litmus(block)


class TestReconstructionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        key=st.binary(min_size=32, max_size=32),
        start=st.integers(min_value=0, max_value=52),
    )
    def test_reconstruction_inverts_expansion(self, key, start):
        """From any Nk-word window of any schedule, reconstruction
        reproduces the schedule exactly — the recurrence is bijective."""
        words = expand_key_words(key)
        window = words[start : start + 8]
        assert reconstruct_schedule(window, start, 256) == expand_key(key)

    @settings(max_examples=15, deadline=None)
    @given(key=st.binary(min_size=16, max_size=16))
    def test_aes128_reconstruction(self, key):
        words = expand_key_words(key)
        for start in (0, 17, 40):
            assert reconstruct_schedule(words[start : start + 4], start, 128) == expand_key(key)


class TestKeyfindProperties:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
    @given(
        key=st.binary(min_size=32, max_size=32),
        prefix_blocks=st.integers(min_value=1, max_value=32),
        noise_seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_planted_key_always_found(self, key, prefix_blocks, noise_seed):
        """Wherever a schedule lands in random memory, keyfind finds it."""
        rng = np.random.default_rng(noise_seed)
        blob = bytearray(rng.integers(0, 256, 64 * 64, dtype=np.uint8).tobytes())
        offset = prefix_blocks * 64 + int(rng.integers(0, 64))
        blob[offset : offset + 240] = expand_key(key)
        found = unique_master_keys(find_aes_keys(bytes(blob), 256))
        assert key in found


class TestVariantProperties:
    @settings(max_examples=30, deadline=None)
    @given(key_bits=st.sampled_from([128, 192, 256]))
    def test_geometry_consistency(self, key_bits):
        variant = AesVariant(key_bits)
        assert variant.span_bytes == variant.window_bytes + 16
        assert variant.span_bytes <= 64  # fits a memory block
        assert all(
            4 * r + variant.nk + 4 <= variant.total_words for r in variant.window_rounds
        )
        # Phases partition the valid rounds.
        assert sorted(
            r for phase in variant.phases() for r in variant.rounds_with_phase(phase)
        ) == list(variant.window_rounds)
