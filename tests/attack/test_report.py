"""Tests for attack-report serialisation."""

import json

import pytest

from repro.attack.pipeline import Ddr4ColdBootAttack
from repro.attack.report import (
    REPORT_SCHEMA_VERSION,
    report_to_dict,
    report_to_markdown,
    save_report_json,
)
from repro.attack.sweep import synthetic_dump


@pytest.fixture(scope="module")
def successful_report():
    dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=41)
    return Ddr4ColdBootAttack().run(dump), master


class TestJsonForm:
    def test_round_trips_through_json(self, successful_report):
        report, _ = successful_report
        blob = json.dumps(report_to_dict(report))
        parsed = json.loads(blob)
        assert parsed["schema_version"] == REPORT_SCHEMA_VERSION
        assert parsed["dump_bytes"] == report.dump_bytes
        assert len(parsed["recovered_keys"]) == len(report.recovered_keys)

    def test_keys_present_by_default(self, successful_report):
        report, master = successful_report
        parsed = report_to_dict(report)
        keys = {entry["master_key"] for entry in parsed["recovered_keys"]}
        assert master[:32].hex() in keys

    def test_redaction(self, successful_report):
        report, master = successful_report
        parsed = report_to_dict(report, include_keys=False)
        assert all("redacted" in e["master_key"] for e in parsed["recovered_keys"])
        assert master.hex() not in json.dumps(parsed)

    def test_save(self, successful_report, tmp_path):
        report, _ = successful_report
        path = tmp_path / "report.json"
        save_report_json(report, path)
        assert json.loads(path.read_text())["dump_bytes"] == report.dump_bytes

    def test_hit_details_serialised(self, successful_report):
        report, _ = successful_report
        parsed = report_to_dict(report)
        hit = parsed["recovered_keys"][0]["hits"][0]
        assert {"block_index", "key_index", "offset", "round_index"} <= set(hit)


class TestMarkdownForm:
    def test_contains_summary_and_table(self, successful_report):
        report, _ = successful_report
        text = report_to_markdown(report)
        assert "# Cold boot attack report" in text
        assert "| # | bits |" in text
        assert "redacted" in text  # keys hidden by default

    def test_include_keys(self, successful_report):
        report, master = successful_report
        text = report_to_markdown(report, include_keys=True)
        assert master[:32].hex() in text

    def test_empty_report(self):
        from repro.attack.pipeline import AttackReport

        text = report_to_markdown(AttackReport())
        assert "No expanded AES key schedules" in text


class TestResilienceFields:
    def make_sharded_report(self):
        from repro.attack.pipeline import AttackReport

        return AttackReport(
            dump_bytes=1 << 20,
            n_shards=8,
            quarantined_shards=[0x30000, 0x70000],
            resumed_shards=3,
            degraded_to_serial=True,
        )

    def test_json_carries_resilience_block(self):
        parsed = report_to_dict(self.make_sharded_report())
        resilience = parsed["resilience"]
        assert resilience["n_shards"] == 8
        assert resilience["quarantined_shards"] == [0x30000, 0x70000]
        assert resilience["resumed_shards"] == 3
        assert resilience["degraded_to_serial"] is True
        assert resilience["complete_scan"] is False

    def test_monolithic_report_is_marked_complete(self, successful_report):
        report, _ = successful_report
        parsed = report_to_dict(report)
        assert parsed["resilience"]["n_shards"] == 0
        assert parsed["resilience"]["complete_scan"] is True

    def test_markdown_warns_about_quarantine(self):
        text = report_to_markdown(self.make_sharded_report())
        assert "8 shards" in text
        assert "0x30000" in text

    def test_summary_mentions_sharding(self):
        summary = self.make_sharded_report().summary()
        assert "shards=8" in summary
        assert "resumed=3" in summary
        assert "QUARANTINED=2" in summary
