"""Tests for attack-report serialisation."""

import json

import pytest

from repro.attack.pipeline import Ddr4ColdBootAttack
from repro.attack.report import (
    REPORT_SCHEMA_VERSION,
    load_report_json,
    migrate_report_dict,
    report_to_dict,
    report_to_markdown,
    save_report_json,
)
from repro.attack.sweep import synthetic_dump


@pytest.fixture(scope="module")
def successful_report():
    dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=41)
    return Ddr4ColdBootAttack().run(dump), master


class TestJsonForm:
    def test_round_trips_through_json(self, successful_report):
        report, _ = successful_report
        blob = json.dumps(report_to_dict(report))
        parsed = json.loads(blob)
        assert parsed["schema_version"] == REPORT_SCHEMA_VERSION
        assert parsed["dump_bytes"] == report.dump_bytes
        assert len(parsed["recovered_keys"]) == len(report.recovered_keys)

    def test_keys_present_by_default(self, successful_report):
        report, master = successful_report
        parsed = report_to_dict(report)
        keys = {entry["master_key"] for entry in parsed["recovered_keys"]}
        assert master[:32].hex() in keys

    def test_redaction(self, successful_report):
        report, master = successful_report
        parsed = report_to_dict(report, include_keys=False)
        assert all("redacted" in e["master_key"] for e in parsed["recovered_keys"])
        assert master.hex() not in json.dumps(parsed)

    def test_save(self, successful_report, tmp_path):
        report, _ = successful_report
        path = tmp_path / "report.json"
        save_report_json(report, path)
        assert json.loads(path.read_text())["dump_bytes"] == report.dump_bytes

    def test_hit_details_serialised(self, successful_report):
        report, _ = successful_report
        parsed = report_to_dict(report)
        hit = parsed["recovered_keys"][0]["hits"][0]
        assert {"block_index", "key_index", "offset", "round_index"} <= set(hit)


class TestMarkdownForm:
    def test_contains_summary_and_table(self, successful_report):
        report, _ = successful_report
        text = report_to_markdown(report)
        assert "# Cold boot attack report" in text
        assert "| # | bits |" in text
        assert "redacted" in text  # keys hidden by default

    def test_include_keys(self, successful_report):
        report, master = successful_report
        text = report_to_markdown(report, include_keys=True)
        assert master[:32].hex() in text

    def test_empty_report(self):
        from repro.attack.pipeline import AttackReport

        text = report_to_markdown(AttackReport())
        assert "No expanded AES key schedules" in text


class TestResilienceFields:
    def make_sharded_report(self):
        from repro.attack.pipeline import AttackReport

        return AttackReport(
            dump_bytes=1 << 20,
            n_shards=8,
            quarantined_shards=[0x30000, 0x70000],
            resumed_shards=3,
            degraded_to_serial=True,
        )

    def test_json_carries_resilience_block(self):
        parsed = report_to_dict(self.make_sharded_report())
        resilience = parsed["resilience"]
        assert resilience["n_shards"] == 8
        assert resilience["quarantined_shards"] == [0x30000, 0x70000]
        assert resilience["resumed_shards"] == 3
        assert resilience["degraded_to_serial"] is True
        assert resilience["complete_scan"] is False

    def test_monolithic_report_is_marked_complete(self, successful_report):
        report, _ = successful_report
        parsed = report_to_dict(report)
        assert parsed["resilience"]["n_shards"] == 0
        assert parsed["resilience"]["complete_scan"] is True

    def test_markdown_warns_about_quarantine(self):
        text = report_to_markdown(self.make_sharded_report())
        assert "8 shards" in text
        assert "0x30000" in text

    def test_summary_mentions_sharding(self):
        summary = self.make_sharded_report().summary()
        assert "shards=8" in summary
        assert "resumed=3" in summary
        assert "QUARANTINED=2" in summary


class TestTimingFields:
    def make_expired_report(self):
        from repro.attack.pipeline import AttackReport

        return AttackReport(
            dump_bytes=1 << 20,
            n_shards=4,
            deadline_s=300.0,
            deadline_expired=True,
            expiry_cause="deadline",
            unscanned_shards=[0x40000, 0x60000],
            stall_kills=1,
            resource_backend="shm",
            checkpoint_path="/tmp/scan.jsonl",
        )

    def test_json_carries_timing_block(self):
        parsed = report_to_dict(self.make_expired_report())
        timing = parsed["timing"]
        assert timing["deadline_seconds"] == 300.0
        assert timing["deadline_expired"] is True
        assert timing["interrupted"] is False
        assert timing["expiry_cause"] == "deadline"
        resilience = parsed["resilience"]
        assert resilience["unscanned_shards"] == [0x40000, 0x60000]
        assert resilience["stall_kills"] == 1
        assert resilience["resource_backend"] == "shm"
        assert resilience["checkpoint_path"] == "/tmp/scan.jsonl"
        assert resilience["complete_scan"] is False

    def test_resumable_property(self):
        report = self.make_expired_report()
        assert report.resumable
        report.unscanned_shards = []
        assert not report.resumable

    def test_markdown_warns_about_early_stop(self):
        text = report_to_markdown(self.make_expired_report())
        assert "run stopped early" in text
        assert "deadline" in text


class TestSchemaMigration:
    def v1_dict(self):
        return {
            "schema_version": 1,
            "dump_bytes": 1024,
            "timings": {
                "mine_seconds": 1.5,
                "search_seconds": 2.5,
                "scan_rate_mb_per_hour": 9.0,
            },
            "candidate_keys": {"count": 0, "top_frequencies": []},
            "recovered_keys": [],
        }

    def test_v1_upgrades_to_current(self):
        migrated = migrate_report_dict(self.v1_dict())
        assert migrated["schema_version"] == REPORT_SCHEMA_VERSION
        assert migrated["timing"]["stages"]["mine_seconds"] == 1.5
        assert migrated["timing"]["deadline_seconds"] is None
        assert migrated["timing"]["deadline_expired"] is False
        assert migrated["resilience"]["complete_scan"] is True
        assert migrated["resilience"]["unscanned_shards"] == []
        assert migrated["resilience"]["stall_kills"] == 0
        assert migrated["robustness"]["quarantined_regions"] == []

    def test_migration_preserves_existing_fields(self):
        original = self.v1_dict()
        migrated = migrate_report_dict(original)
        assert migrated["dump_bytes"] == 1024
        assert migrated["timings"]["scan_rate_mb_per_hour"] == 9.0
        assert original["schema_version"] == 1  # input untouched

    def test_migration_is_idempotent(self):
        once = migrate_report_dict(self.v1_dict())
        assert migrate_report_dict(once) == once

    def test_current_report_passes_unchanged(self, successful_report):
        report, _ = successful_report
        current = report_to_dict(report)
        assert migrate_report_dict(current) == current

    def test_newer_schema_is_refused(self):
        too_new = {"schema_version": REPORT_SCHEMA_VERSION + 1}
        with pytest.raises(ValueError, match="newer"):
            migrate_report_dict(too_new)

    def test_v3_keeps_its_resilience_counts(self):
        v3 = self.v1_dict()
        v3["schema_version"] = 3
        v3["resilience"] = {
            "n_shards": 8,
            "quarantined_shards": [7],
            "resumed_shards": 2,
            "degraded_to_serial": True,
            "complete_scan": False,
        }
        migrated = migrate_report_dict(v3)
        assert migrated["resilience"]["n_shards"] == 8
        assert migrated["resilience"]["resumed_shards"] == 2
        assert migrated["resilience"]["stall_kills"] == 0  # filled default

    def test_load_report_json_round_trip(self, successful_report, tmp_path):
        """save → load of an old-version file yields a current dict."""
        report, master = successful_report
        path = tmp_path / "report.json"
        save_report_json(report, path)
        # Age the file: rewrite it as if a v3 writer had produced it.
        aged = json.loads(path.read_text())
        aged["schema_version"] = 3
        del aged["timing"]
        for field in ("unscanned_shards", "stall_kills", "resource_backend",
                      "checkpoint_path", "checkpoint_error"):
            del aged["resilience"][field]
        path.write_text(json.dumps(aged))

        loaded = load_report_json(path)
        assert loaded["schema_version"] == REPORT_SCHEMA_VERSION
        assert loaded["timing"]["stages"]["mine_seconds"] == aged["timings"]["mine_seconds"]
        keys = {entry["master_key"] for entry in loaded["recovered_keys"]}
        assert master[:32].hex() in keys


class TestV6DecodeMigration:
    def v5_dict(self):
        return {
            "schema_version": 5,
            "dump_bytes": 2048,
            "timings": {"mine_seconds": 1.0, "search_seconds": 1.0,
                        "scan_rate_mb_per_hour": 1.0},
            "candidate_keys": {"count": 0, "top_frequencies": []},
            "recovered_keys": [],
            "robustness": {
                "adaptive": {"stages_run": ["strict"]},
                "quarantined_regions": [],
                "min_confidence": 0.5,
            },
        }

    def test_v5_gains_a_null_decode_block(self):
        migrated = migrate_report_dict(self.v5_dict())
        assert migrated["schema_version"] == REPORT_SCHEMA_VERSION
        assert migrated["robustness"]["decode"] is None
        # Pre-existing robustness content survives verbatim.
        assert migrated["robustness"]["min_confidence"] == 0.5

    def test_v6_round_trips_decode_telemetry(self, tmp_path):
        from repro.attack.pipeline import AttackReport

        report = AttackReport(
            dump_bytes=4096,
            adaptive={
                "stages_run": ["strict", "decoded"],
                "decode": {"tables": 9, "converged": 2, "abstained": 7,
                           "iterations": 120, "interrupted": False},
            },
        )
        path = tmp_path / "v6.json"
        save_report_json(report, path)
        loaded = load_report_json(path)
        assert loaded["robustness"]["decode"]["converged"] == 2
        assert migrate_report_dict(loaded) == loaded

    def test_v1_chain_reaches_v6_with_decode_default(self):
        v1 = {
            "schema_version": 1,
            "dump_bytes": 1,
            "timings": {"mine_seconds": 0.0, "search_seconds": 0.0,
                        "scan_rate_mb_per_hour": 0.0},
            "candidate_keys": {"count": 0, "top_frequencies": []},
            "recovered_keys": [],
        }
        migrated = migrate_report_dict(v1)
        assert migrated["schema_version"] == REPORT_SCHEMA_VERSION
        assert migrated["robustness"]["decode"] is None

    def test_markdown_reports_decode_stage(self):
        from repro.attack.pipeline import AttackReport

        report = AttackReport(
            adaptive={
                "estimated_decay_rate": 0.04,
                "decay_source": "litmus-mismatch",
                "stages_run": ["strict", "decoded"],
                "n_recovered": 1,
                "decode": {"tables": 9, "converged": 2, "abstained": 7,
                           "iterations": 120, "interrupted": True},
            },
        )
        text = report_to_markdown(report)
        assert "decoded stage: 2 converged / 7 abstained of 9 tables" in text
        assert "interrupted by deadline" in text


class TestV7ServiceMigration:
    def versioned_dict(self, version: int) -> dict:
        base = {
            "schema_version": version,
            "dump_bytes": 512,
            "timings": {"mine_seconds": 0.1, "search_seconds": 0.2,
                        "scan_rate_mb_per_hour": 3.0},
            "candidate_keys": {"count": 0, "top_frequencies": []},
            "recovered_keys": [],
        }
        if version >= 2:
            base["resilience"] = {
                "n_shards": 4, "quarantined_shards": [], "resumed_shards": 1,
                "degraded_to_serial": False, "complete_scan": True,
            }
        if version >= 3:
            base["robustness"] = {
                "adaptive": None, "quarantined_regions": [],
                "min_confidence": 0.0,
            }
        return base

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5, 6])
    def test_every_prior_version_gains_a_null_service_block(self, version):
        migrated = migrate_report_dict(self.versioned_dict(version))
        assert migrated["schema_version"] == REPORT_SCHEMA_VERSION
        assert migrated["service"] is None

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5, 6])
    def test_migration_round_trips_every_prior_version(self, version):
        once = migrate_report_dict(self.versioned_dict(version))
        assert migrate_report_dict(once) == once

    def test_existing_service_block_survives_migration(self):
        aged = self.versioned_dict(6)
        aged["service"] = {"job_id": "job-x", "attempts": 2}
        migrated = migrate_report_dict(aged)
        assert migrated["service"] == {"job_id": "job-x", "attempts": 2}

    def test_report_dicts_carry_null_service_by_default(self, successful_report):
        report, _ = successful_report
        assert report_to_dict(report)["service"] is None

    def test_v6_report_resumed_under_v7_yields_identical_keys(self, tmp_path):
        """A journal a v6 run left behind resumes byte-identically on v7.

        Simulates the upgrade path: a v6 deployment ran a sharded scan
        to completion and archived its report; the same journal resumed
        by v7 tooling must recover the same keys, and migrating the
        archived v6 report must agree with the fresh v7 one on every
        canonical (non-volatile) byte.
        """
        from repro.attack.report import canonical_report_bytes

        dump, master, _ = synthetic_dump(
            bit_error_rate=0.0, n_blocks=3 * 4096, seed=43)
        journal = tmp_path / "v6-run.checkpoint.jsonl"
        v6_report = Ddr4ColdBootAttack().run_sharded(
            dump, workers=2, n_shards=4, checkpoint=journal)
        aged = report_to_dict(v6_report)
        aged["schema_version"] = 6
        del aged["service"]  # a v6 writer never emitted the block

        resumed = Ddr4ColdBootAttack().run_sharded(
            dump, workers=2, n_shards=4, checkpoint=journal, resume=True)
        assert resumed.resumed_shards == 4  # nothing re-scanned
        assert [r.master_key for r in resumed.recovered_keys] == \
            [r.master_key for r in v6_report.recovered_keys]
        assert master[:32].hex() in {r.master_key.hex()
                                     for r in resumed.recovered_keys}
        assert canonical_report_bytes(migrate_report_dict(aged)) == \
            canonical_report_bytes(report_to_dict(resumed))


class TestCanonicalReportBytes:
    def test_volatile_fields_do_not_change_identity(self, successful_report):
        from repro.attack.report import canonical_report_bytes

        report, _ = successful_report
        one = report_to_dict(report)
        two = report_to_dict(report)
        two["timings"]["mine_seconds"] = 999.0
        two["timing"]["stages"]["search_seconds"] = 999.0
        two["service"] = {"job_id": "job-y", "attempts": 3}
        two["resilience"]["resumed_shards"] = 7
        two["resilience"]["executor"] = "process"
        two["resilience"]["checkpoint_path"] = "/elsewhere.jsonl"
        assert canonical_report_bytes(one) == canonical_report_bytes(two)

    def test_finding_changes_do_change_identity(self, successful_report):
        from repro.attack.report import canonical_report_bytes

        report, _ = successful_report
        one = report_to_dict(report)
        two = report_to_dict(report)
        two["recovered_keys"] = []
        assert canonical_report_bytes(one) != canonical_report_bytes(two)

    def test_input_is_not_modified(self, successful_report):
        from repro.attack.report import canonical_report_bytes

        report, _ = successful_report
        data = report_to_dict(report)
        before = json.dumps(data, sort_keys=True)
        canonical_report_bytes(data)
        assert json.dumps(data, sort_keys=True) == before
