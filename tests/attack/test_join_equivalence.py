"""The vectorised fingerprint join is *identical* to the seed's dict join.

The sorted join (per-band ``argsort``/``searchsorted``) replaced the
per-block Python dict join purely for speed; any behavioural difference
is a bug.  Hypothesis drives both implementations — plus the frozen
seed code in :mod:`benchmarks.legacy_scan` — across random key/block
matrices with planted schedules and random decay, asserting the joined
pairs and the verified hits match exactly (values *and* order).
"""

import sys
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from benchmarks.legacy_scan import SeedAesKeySearch  # noqa: E402

from repro.attack.aes_search import AesKeySearch  # noqa: E402
from repro.attack.keymine import keys_matrix, mine_scrambler_keys  # noqa: E402
from repro.attack.sweep import synthetic_dump  # noqa: E402
from repro.crypto.aes import expand_key  # noqa: E402


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    key_bits=st.sampled_from((128, 192, 256)),
    n_keys=st.integers(1, 6),
    n_blocks=st.integers(1, 24),
    planted=st.integers(0, 3),
    decay_bits=st.integers(0, 96),
)
def test_sorted_join_matches_dict_join(
    seed, key_bits, n_keys, n_blocks, planted, decay_bits
):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 256, size=(n_keys, 64), dtype=np.uint8)
    blocks = rng.integers(0, 256, size=(n_blocks, 64), dtype=np.uint8)

    # Plant decayed schedule sightings so the joins have real matches to
    # agree on, not just empty results.
    schedule = np.frombuffer(expand_key(rng.bytes(key_bits // 8)), dtype=np.uint8)
    max_row = (len(schedule) - 64) // 16
    for _ in range(planted):
        block = int(rng.integers(0, n_blocks))
        key = int(rng.integers(0, n_keys))
        row = int(rng.integers(0, max_row + 1))
        blocks[block] = keys[key] ^ schedule[16 * row : 16 * row + 64]
    for _ in range(decay_bits):
        block = int(rng.integers(0, n_blocks))
        blocks[block, int(rng.integers(0, 64))] ^= np.uint8(1 << int(rng.integers(0, 8)))

    fast = AesKeySearch(keys, key_bits=key_bits, join="sorted")
    dict_join = AesKeySearch(keys, key_bits=key_bits, join="dict")
    frozen_seed = SeedAesKeySearch(keys, key_bits=key_bits)

    for offset in fast.offsets:
        for phase in fast.variant.phases():
            pairs = fast._candidate_pairs(blocks, offset, phase)
            assert np.array_equal(pairs, dict_join._candidate_pairs(blocks, offset, phase))
            assert np.array_equal(pairs, frozen_seed._candidate_pairs(blocks, offset, phase))
            assert fast._verify_pairs(blocks, pairs, offset, phase) == (
                frozen_seed._verify_pairs(blocks, pairs, offset, phase)
            )


def test_recover_keys_identical_to_seed_on_synthetic_dump():
    """Full-scan equivalence: every RecoveredAesKey field, in order."""
    # Default dump size: smaller dumps don't cover the scrambler-key
    # period, leaving the planted table's key unminable.
    dump, master, _ = synthetic_dump(0.002, seed=11)
    keys = keys_matrix(mine_scrambler_keys(dump))

    fast = AesKeySearch(keys, key_bits=256).recover_keys(dump)
    frozen_seed = SeedAesKeySearch(keys, key_bits=256).recover_keys(dump)

    assert fast == frozen_seed
    masters = {r.master_key for r in fast}
    assert master[:32] in masters and master[32:] in masters
