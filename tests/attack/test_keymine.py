"""Tests for scrambler-key mining."""

import numpy as np
import pytest

from repro.attack.keymine import CandidateKey, keys_matrix, mine_scrambler_keys
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


def scrambled_image_with_zero_blocks(
    scrambler: Ddr4Scrambler, n_blocks: int, zero_every: int, seed: int = 0
) -> MemoryImage:
    """Random plaintext with zero blocks sprinkled at a fixed stride."""
    rng = SplitMix64(seed)
    plain = bytearray(rng.next_bytes(n_blocks * 64))
    for b in range(0, n_blocks, zero_every):
        plain[b * 64 : (b + 1) * 64] = bytes(64)
    return MemoryImage(scrambler.scramble_range(0, bytes(plain)))


class TestCleanMining:
    def test_recovers_exposed_keys_exactly(self):
        scrambler = Ddr4Scrambler(boot_seed=1234)
        image = scrambled_image_with_zero_blocks(scrambler, n_blocks=2048, zero_every=4)
        mined = {c.key for c in mine_scrambler_keys(image)}
        exposed = {scrambler.key_for_address(b * 64) for b in range(0, 2048, 4)}
        assert exposed <= mined

    def test_frequency_ordering(self):
        scrambler = Ddr4Scrambler(boot_seed=99)
        image = scrambled_image_with_zero_blocks(scrambler, n_blocks=1024, zero_every=2)
        candidates = mine_scrambler_keys(image)
        counts = [c.count for c in candidates]
        assert counts == sorted(counts, reverse=True)

    def test_no_zero_blocks_no_true_keys(self):
        scrambler = Ddr4Scrambler(boot_seed=5)
        rng = SplitMix64(1)
        image = MemoryImage(scrambler.scramble_range(0, rng.next_bytes(512 * 64)))
        mined = {c.key for c in mine_scrambler_keys(image)}
        true_keys = {scrambler.key_for_address(b * 64) for b in range(512)}
        assert not (mined & true_keys)

    def test_empty_image_yields_nothing(self):
        scrambler = Ddr4Scrambler(boot_seed=5)
        rng = SplitMix64(2)
        image = MemoryImage(rng.next_bytes(64 * 64))
        assert mine_scrambler_keys(image, tolerance_bits=0) == []


class TestDecayedMining:
    def test_majority_vote_repairs_flips(self):
        # Three exposures of each key (key indices cycle every 4096
        # blocks), so the vote can outnumber any single decayed copy.
        scrambler = Ddr4Scrambler(boot_seed=77)
        n_blocks = 3 * 4096
        image = scrambled_image_with_zero_blocks(scrambler, n_blocks=n_blocks, zero_every=2)
        data = bytearray(image.data)
        rng = SplitMix64(9)
        for b in range(0, n_blocks, 16):  # one flipped bit per 16th block
            bit = rng.next_below(512)
            data[b * 64 + bit // 8] ^= 0x80 >> (bit % 8)
        decayed = MemoryImage(bytes(data))
        mined = {c.key for c in mine_scrambler_keys(decayed, scan_limit_bytes=None)}
        exposed = {scrambler.key_for_address(b * 64) for b in range(0, 4096, 2)}
        # Voting recovers nearly all keys exactly despite the flips.
        assert len(exposed & mined) >= 0.95 * len(exposed)


class TestScanLimit:
    def test_limit_restricts_scan(self):
        scrambler = Ddr4Scrambler(boot_seed=3)
        image = scrambled_image_with_zero_blocks(scrambler, n_blocks=1024, zero_every=8)
        limited = mine_scrambler_keys(image, scan_limit_bytes=64 * 64)
        full = mine_scrambler_keys(image, scan_limit_bytes=None)
        assert len(limited) < len(full)


class TestCandidateKey:
    def test_validation(self):
        with pytest.raises(ValueError):
            CandidateKey(key=bytes(32), count=1)
        with pytest.raises(ValueError):
            CandidateKey(key=bytes(64), count=0)

    def test_keys_matrix_shape(self):
        candidates = [CandidateKey(key=bytes([i]) * 64, count=1) for i in range(5)]
        matrix = keys_matrix(candidates)
        assert matrix.shape == (5, 64)
        assert keys_matrix([]).shape == (0, 64)

    def test_negative_tolerance_rejected(self):
        image = MemoryImage(bytes(64))
        with pytest.raises(ValueError):
            mine_scrambler_keys(image, tolerance_bits=-1)
