"""Hypothesis pins the direct-address fused join to the dict reference.

The fused scan path (`join="sorted"`) replaces the original per-(offset,
phase) Python hash join with cache-blocked direct-address tables, a
linear-relation prefilter, and an S-box-anchored mismatch bound.  Its
contract is *byte identity*: for any dump and any key set it must emit
exactly the hits — same blocks, same keys, same order — as the frozen
`join="dict"` reference, under arbitrary decay.  Hypothesis sweeps the
geometry (variant, table placement, alignment) and the decay channel.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.aes_search import AesKeySearch
from repro.crypto.aes import expand_key
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64

N_BLOCKS = 48


def _planted_image(
    scrambler: Ddr4Scrambler, key_bits: int, table_offset: int, seed: int
) -> tuple[MemoryImage, bytes]:
    """Random plaintext + one planted schedule, scrambled."""
    rng = SplitMix64(seed)
    master = rng.next_bytes(key_bits // 8)
    plain = bytearray(rng.next_bytes(N_BLOCKS * 64))
    schedule = expand_key(master)
    plain[table_offset : table_offset + len(schedule)] = schedule
    return MemoryImage(scrambler.scramble_range(0, bytes(plain))), master


def _decay(image: MemoryImage, n_flips: int, seed: int) -> MemoryImage:
    data = bytearray(image.data)
    rng = SplitMix64(seed)
    for _ in range(n_flips):
        bit = rng.next_below(len(data) * 8)
        data[bit // 8] ^= 0x80 >> (bit % 8)
    return MemoryImage(bytes(data))


@settings(max_examples=25, deadline=None)
@given(
    key_bits=st.sampled_from([128, 192, 256]),
    boot_seed=st.integers(0, 2**16),
    table_block=st.integers(0, 40),
    byte_skew=st.integers(0, 16),
    n_flips=st.integers(0, 24),
    flip_seed=st.integers(0, 2**16),
)
def test_fused_join_matches_dict_reference(
    key_bits, boot_seed, table_block, byte_skew, n_flips, flip_seed
):
    scrambler = Ddr4Scrambler(boot_seed=boot_seed)
    image, _ = _planted_image(
        scrambler, key_bits, table_offset=table_block * 64 + byte_skew, seed=flip_seed
    )
    decayed = _decay(image, n_flips, seed=flip_seed ^ 0x5A5A)
    # Key pool: every other block's true scrambler key — includes the
    # table region's keys, so genuine hits occur alongside noise.
    keys = [scrambler.key_for_address(b * 64) for b in range(0, N_BLOCKS, 2)]
    fused = AesKeySearch(keys, key_bits=key_bits)
    reference = AesKeySearch(keys, key_bits=key_bits, join="dict")
    assert fused.find_hits(decayed) == reference.find_hits(decayed)
    assert fused.recover_keys(decayed) == reference.recover_keys(decayed)


def test_zero_page_dump_self_join_equivalence():
    """An all-zero dump is the prefilter's worst case: every scrambled
    block *is* its own keystream, so every (block, key=own) pair passes
    the linear bound at all offsets and only the S-box anchor rejects.
    The fused path must still emit exactly the reference's hits."""
    scrambler = Ddr4Scrambler(boot_seed=9)
    image = MemoryImage(scrambler.scramble_range(0, bytes(N_BLOCKS * 64)))
    keys = [scrambler.key_for_address(b * 64) for b in range(N_BLOCKS)]
    fused = AesKeySearch(keys, key_bits=256)
    reference = AesKeySearch(keys, key_bits=256, join="dict")
    assert fused.find_hits(image) == reference.find_hits(image)
