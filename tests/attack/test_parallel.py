"""Tests for the sharded/parallel scan."""

import pytest

from repro.attack.aes_search import RecoveredAesKey, ScheduleHit
from repro.attack.parallel import (
    Shard,
    merge_recovered,
    parallel_recover_keys,
    shard_image,
)
from repro.attack.sweep import synthetic_dump
from repro.crypto.aes import schedule_bytes
from repro.dram.image import MemoryImage
from repro.resilience.errors import ShardLayoutError


def recovered_at(block_index: int, offset: int = 0, votes: int = 1) -> RecoveredAesKey:
    hit = ScheduleHit(
        block_index=block_index,
        key_index=0,
        offset=offset,
        round_index=0,
        mismatch_bits=0,
        key_bits=256,
    )
    return RecoveredAesKey(
        master_key=bytes(32),
        key_bits=256,
        votes=votes,
        first_block_index=block_index,
        match_fraction=1.0,
        region_agreement=1.0,
        hits=(hit,),
    )


class TestSharding:
    def test_shards_cover_everything(self):
        dump = MemoryImage(bytes(100 * 64))
        shards = shard_image(dump, n_shards=4, overlap_bytes=240)
        covered = set()
        for shard in shards:
            start = shard.base_offset // 64
            covered.update(range(start, start + shard.image.n_blocks))
        assert covered == set(range(100))

    def test_overlap_extends_shards(self):
        dump = MemoryImage(bytes(100 * 64))
        shards = shard_image(dump, n_shards=4, overlap_bytes=240)
        # Interior shards carry ceil(240/64)=4 extra blocks.
        assert shards[0].image.n_blocks == 25 + 4

    def test_more_shards_than_blocks(self):
        dump = MemoryImage(bytes(3 * 64))
        shards = shard_image(dump, n_shards=10, overlap_bytes=0)
        assert len(shards) == 3

    def test_empty_dump(self):
        assert shard_image(MemoryImage(b""), 4, 0) == []

    def test_validation(self):
        dump = MemoryImage(bytes(64))
        with pytest.raises(ValueError):
            shard_image(dump, 0, 0)
        with pytest.raises(ValueError):
            shard_image(dump, 1, -1)
        with pytest.raises(ValueError):
            Shard(base_offset=32, image=dump)

    def test_layout_errors_are_typed(self):
        # The old bare ValueErrors are now ShardLayoutError (still a
        # ValueError for legacy handlers).
        dump = MemoryImage(bytes(64))
        with pytest.raises(ShardLayoutError):
            shard_image(dump, 0, 0)
        with pytest.raises(ShardLayoutError):
            Shard(base_offset=32, image=dump)

    def test_overlap_longer_than_a_shard(self):
        # Overlap (10 blocks) exceeds the nominal shard size (3 blocks);
        # shards must clamp at the dump end and still cover everything.
        dump = MemoryImage(bytes(12 * 64))
        shards = shard_image(dump, n_shards=4, overlap_bytes=10 * 64)
        covered = set()
        for shard in shards:
            assert shard.base_offset + len(shard.image.data) <= len(dump)
            start = shard.base_offset // 64
            covered.update(range(start, start + shard.image.n_blocks))
        assert covered == set(range(12))

    def test_single_block_dump(self):
        dump = MemoryImage(bytes(64))
        shards = shard_image(dump, n_shards=4, overlap_bytes=240)
        assert len(shards) == 1
        assert shards[0].base_offset == 0
        assert shards[0].image.n_blocks == 1

    def test_every_schedule_window_lies_inside_some_shard(self):
        # The guarantee the overlap exists for: any schedule-length
        # window of the dump is wholly contained in at least one shard.
        window = schedule_bytes(256) + 64
        dump = MemoryImage(bytes(97 * 64))
        for n_shards in (1, 2, 3, 5, 8, 97, 200):
            shards = shard_image(dump, n_shards=n_shards, overlap_bytes=window)
            for start in range(0, len(dump) - window + 1, 64):
                assert any(
                    shard.base_offset <= start
                    and start + window <= shard.base_offset + len(shard.image.data)
                    for shard in shards
                ), f"window at {start} not covered with n_shards={n_shards}"


class TestEndToEnd:
    def test_sharded_search_matches_monolithic(self):
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=51)
        recovered = parallel_recover_keys(dump, key_bits=256, workers=1, n_shards=4)
        masters = {r.master_key for r in recovered}
        assert master[:32] in masters and master[32:] in masters

    def test_table_straddling_a_shard_boundary(self):
        """The overlap guarantees boundary-straddling tables survive."""
        # 3*4096 blocks, 4 shards -> boundary at block 3072; plant there.
        dump, master, _ = synthetic_dump(
            bit_error_rate=0.0, n_blocks=3 * 4096, table_block=3070, seed=52
        )
        recovered = parallel_recover_keys(dump, key_bits=256, workers=1, n_shards=4)
        masters = {r.master_key for r in recovered}
        assert master[:32] in masters and master[32:] in masters

    def test_two_process_workers(self):
        # Three index periods so every table block's key gets exposed
        # (period 4096 and zero stride 3 are coprime).
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=53)
        recovered = parallel_recover_keys(dump, key_bits=256, workers=2)
        assert master[:32] in {r.master_key for r in recovered}

    def test_merge_deduplicates_overlap(self):
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=54)
        recovered = parallel_recover_keys(dump, key_bits=256, workers=1, n_shards=6)
        bases = [r.hits[0].table_base for r in recovered]
        assert len(bases) == len(set(bases))

    def test_empty_candidates_short_circuit(self):
        from repro.util.rng import SplitMix64

        dump = MemoryImage(SplitMix64(1).next_bytes(256 * 64))
        assert parallel_recover_keys(dump) == []


class TestMerge:
    def test_results_without_hits_are_dropped(self):
        # Regression: a hit-less result used to be assigned
        # local_base=0, colliding with (and displacing) a genuine
        # schedule found at its shard's offset 0.
        hitless = RecoveredAesKey(
            master_key=bytes(32),
            key_bits=256,
            votes=99,
            first_block_index=0,
            match_fraction=1.0,
            region_agreement=1.0,
            hits=(),
        )
        genuine = recovered_at(block_index=0, votes=2)
        merged = merge_recovered([(0, [genuine]), (4096, [hitless])])
        assert merged == [genuine]

    def test_merge_rebases_to_global_offsets(self):
        result = recovered_at(block_index=3, offset=16)
        [merged] = merge_recovered([(10 * 64, [result])])
        assert merged.hits[0].block_index == 13
        assert merged.hits[0].table_base == result.hits[0].table_base + 10 * 64
        assert merged.first_block_index == 13

    def test_duplicate_across_shards_keeps_stronger(self):
        # Block 10 seen from shard 0 and from shard at 5 blocks (as its
        # local block 5): same global base, higher vote count wins.
        weak = recovered_at(block_index=10, votes=1)
        strong = recovered_at(block_index=5, votes=4)
        merged = merge_recovered([(0, [weak]), (5 * 64, [strong])])
        assert len(merged) == 1
        assert merged[0].votes == 4
        assert merged[0].hits[0].block_index == 10
