"""Tests for the sharded/parallel scan."""

import pytest

from repro.attack.parallel import (
    Shard,
    merge_recovered,
    parallel_recover_keys,
    shard_image,
)
from repro.attack.sweep import synthetic_dump
from repro.dram.image import MemoryImage


class TestSharding:
    def test_shards_cover_everything(self):
        dump = MemoryImage(bytes(100 * 64))
        shards = shard_image(dump, n_shards=4, overlap_bytes=240)
        covered = set()
        for shard in shards:
            start = shard.base_offset // 64
            covered.update(range(start, start + shard.image.n_blocks))
        assert covered == set(range(100))

    def test_overlap_extends_shards(self):
        dump = MemoryImage(bytes(100 * 64))
        shards = shard_image(dump, n_shards=4, overlap_bytes=240)
        # Interior shards carry ceil(240/64)=4 extra blocks.
        assert shards[0].image.n_blocks == 25 + 4

    def test_more_shards_than_blocks(self):
        dump = MemoryImage(bytes(3 * 64))
        shards = shard_image(dump, n_shards=10, overlap_bytes=0)
        assert len(shards) == 3

    def test_empty_dump(self):
        assert shard_image(MemoryImage(b""), 4, 0) == []

    def test_validation(self):
        dump = MemoryImage(bytes(64))
        with pytest.raises(ValueError):
            shard_image(dump, 0, 0)
        with pytest.raises(ValueError):
            shard_image(dump, 1, -1)
        with pytest.raises(ValueError):
            Shard(base_offset=32, image=dump)


class TestEndToEnd:
    def test_sharded_search_matches_monolithic(self):
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=51)
        recovered = parallel_recover_keys(dump, key_bits=256, workers=1, n_shards=4)
        masters = {r.master_key for r in recovered}
        assert master[:32] in masters and master[32:] in masters

    def test_table_straddling_a_shard_boundary(self):
        """The overlap guarantees boundary-straddling tables survive."""
        # 3*4096 blocks, 4 shards -> boundary at block 3072; plant there.
        dump, master, _ = synthetic_dump(
            bit_error_rate=0.0, n_blocks=3 * 4096, table_block=3070, seed=52
        )
        recovered = parallel_recover_keys(dump, key_bits=256, workers=1, n_shards=4)
        masters = {r.master_key for r in recovered}
        assert master[:32] in masters and master[32:] in masters

    def test_two_process_workers(self):
        # Three index periods so every table block's key gets exposed
        # (period 4096 and zero stride 3 are coprime).
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=53)
        recovered = parallel_recover_keys(dump, key_bits=256, workers=2)
        assert master[:32] in {r.master_key for r in recovered}

    def test_merge_deduplicates_overlap(self):
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=54)
        recovered = parallel_recover_keys(dump, key_bits=256, workers=1, n_shards=6)
        bases = [r.hits[0].table_base for r in recovered]
        assert len(bases) == len(set(bases))

    def test_empty_candidates_short_circuit(self):
        from repro.util.rng import SplitMix64

        dump = MemoryImage(SplitMix64(1).next_bytes(256 * 64))
        assert parallel_recover_keys(dump) == []
