"""Tests for the per-block AES key search (§III-C)."""

import numpy as np
import pytest

from repro.attack.aes_search import (
    AesKeySearch,
    AesVariant,
    exhaustive_hits,
    reconstruct_schedule,
)
from repro.crypto.aes import expand_key, expand_key_words
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


def plant_schedule(
    scrambler: Ddr4Scrambler,
    n_blocks: int,
    master_key: bytes,
    table_offset: int,
    seed: int = 0,
) -> MemoryImage:
    """Random plaintext with one expanded schedule planted, then scrambled."""
    rng = SplitMix64(seed)
    plain = bytearray(rng.next_bytes(n_blocks * 64))
    schedule = expand_key(master_key)
    plain[table_offset : table_offset + len(schedule)] = schedule
    return MemoryImage(scrambler.scramble_range(0, bytes(plain)))


class TestVariantGeometry:
    def test_aes256_thirteen_windows(self):
        """The '12 possible partial expansions' plus the r=0 window."""
        assert AesVariant(256).window_rounds == tuple(range(13))

    def test_span_sizes(self):
        assert AesVariant(256).span_bytes == 48
        assert AesVariant(192).span_bytes == 40
        assert AesVariant(128).span_bytes == 32

    def test_phases(self):
        # AES-256 windows sit at word 4r: phase 0 (even r) or 4 (odd r);
        # both share the same linear relations but different round sets.
        assert AesVariant(256).phases() == (0, 4)
        assert AesVariant(128).phases() == (0,)
        assert set(AesVariant(192).phases()) == {0, 2, 4}


class TestReconstruction:
    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    def test_any_window_rebuilds_full_schedule(self, key_bits):
        key = bytes(range(key_bits // 8))
        words = expand_key_words(key)
        nk = key_bits // 32
        schedule = expand_key(key)
        for start in range(0, len(words) - nk, 5):
            window = words[start : start + nk]
            assert reconstruct_schedule(window, start, key_bits) == schedule

    def test_rejects_out_of_schedule_window(self):
        with pytest.raises(ValueError):
            reconstruct_schedule([0] * 8, 55, 256)

    def test_rejects_wrong_window_length(self):
        with pytest.raises(ValueError):
            reconstruct_schedule([0] * 4, 0, 256)


class TestCleanSearch:
    def test_recovers_key_at_odd_alignment(self):
        scrambler = Ddr4Scrambler(boot_seed=404)
        master = bytes(range(32))
        image = plant_schedule(scrambler, 512, master, table_offset=100 * 64 + 13)
        search = AesKeySearch(scrambler.all_keys()[:256], key_bits=256)
        # True key for blocks 100..103 must be in the candidate set.
        keys = [scrambler.key_for_address(b * 64) for b in range(98, 106)]
        search = AesKeySearch(keys, key_bits=256)
        recovered = search.recover_keys(image)
        assert recovered and recovered[0].master_key == master
        assert recovered[0].match_fraction == 1.0

    @pytest.mark.parametrize("alignment", [0, 1, 7, 15, 16, 48, 63])
    def test_all_alignments(self, alignment):
        scrambler = Ddr4Scrambler(boot_seed=11)
        master = b"\x55" * 32
        image = plant_schedule(scrambler, 64, master, table_offset=20 * 64 + alignment, seed=alignment)
        keys = [scrambler.key_for_address(b * 64) for b in range(18, 28)]
        recovered = AesKeySearch(keys, key_bits=256).recover_keys(image)
        assert [r.master_key for r in recovered] == [master]

    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    def test_all_key_sizes(self, key_bits):
        scrambler = Ddr4Scrambler(boot_seed=22)
        master = bytes(range(1, key_bits // 8 + 1))
        image = plant_schedule(scrambler, 64, master, table_offset=10 * 64 + 5)
        keys = [scrambler.key_for_address(b * 64) for b in range(8, 18)]
        recovered = AesKeySearch(keys, key_bits=key_bits).recover_keys(image)
        assert master in [r.master_key for r in recovered]

    def test_no_schedule_no_findings(self):
        scrambler = Ddr4Scrambler(boot_seed=33)
        rng = SplitMix64(4)
        image = MemoryImage(scrambler.scramble_range(0, rng.next_bytes(256 * 64)))
        keys = [scrambler.key_for_address(b * 64) for b in range(64)]
        assert AesKeySearch(keys, key_bits=256).recover_keys(image) == []

    def test_zero_key_searches_plaintext(self):
        """With a single zero key the search degenerates to Halderman."""
        master = b"\x77" * 32
        plain = bytearray(SplitMix64(5).next_bytes(128 * 64))
        plain[40 * 64 : 40 * 64 + 240] = expand_key(master)
        image = MemoryImage(bytes(plain))
        recovered = AesKeySearch([bytes(64)], key_bits=256).recover_keys(image)
        assert [r.master_key for r in recovered] == [master]


class TestFingerprintJoinEquivalence:
    def test_matches_exhaustive_reference(self):
        scrambler = Ddr4Scrambler(boot_seed=55)
        master = bytes(reversed(range(32)))
        image = plant_schedule(scrambler, 32, master, table_offset=8 * 64 + 3)
        keys = [scrambler.key_for_address(b * 64) for b in range(6, 16)]
        fast = AesKeySearch(keys, key_bits=256)
        fast_hits = {
            (h.block_index, h.key_index, h.offset, h.round_index)
            for h in fast.find_hits(image)
        }
        slow_hits = {
            (h.block_index, h.key_index, h.offset, h.round_index)
            for h in exhaustive_hits(image, fast.keys, key_bits=256)
        }
        assert fast_hits == slow_hits
        assert fast_hits  # non-trivial


class TestDecayedSearch:
    def test_recovery_with_bit_decay(self):
        scrambler = Ddr4Scrambler(boot_seed=66)
        master = b"\xc3" * 32
        image = plant_schedule(scrambler, 128, master, table_offset=50 * 64 + 9)
        data = bytearray(image.data)
        # Flip scattered bits across the schedule region (~0.5% BER).
        rng = SplitMix64(8)
        for _ in range(12):
            bit = 50 * 64 * 8 + rng.next_below(480 * 8)
            data[bit // 8] ^= 0x80 >> (bit % 8)
        decayed = MemoryImage(bytes(data))
        keys = [scrambler.key_for_address(b * 64) for b in range(48, 60)]
        recovered = AesKeySearch(keys, key_bits=256).recover_keys(decayed)
        assert recovered and recovered[0].master_key == master
        assert recovered[0].match_fraction > 0.95

    def test_votes_reflect_consistent_windows(self):
        scrambler = Ddr4Scrambler(boot_seed=77)
        master = b"\x11" * 32
        image = plant_schedule(scrambler, 64, master, table_offset=16 * 64)
        keys = [scrambler.key_for_address(b * 64) for b in range(14, 24)]
        recovered = AesKeySearch(keys, key_bits=256).recover_keys(image)
        assert recovered[0].votes >= 3


class TestValidation:
    def test_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            AesKeySearch([], key_bits=256)

    def test_bad_key_shape_rejected(self):
        with pytest.raises(ValueError):
            AesKeySearch(np.zeros((2, 32), dtype=np.uint8))

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            AesKeySearch([bytes(64)], key_bits=256, offsets=(17,))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            AesKeySearch([bytes(64)], accept_mismatch_fraction=0.9)
