"""Tests for the Halderman-style plaintext key search baseline."""

import pytest

from repro.attack.keyfind import find_aes_keys, unique_master_keys
from repro.crypto.aes import expand_key
from repro.dram.image import MemoryImage
from repro.util.rng import SplitMix64


def image_with_schedule(master: bytes, offset: int, n_blocks: int = 64, seed: int = 0) -> MemoryImage:
    plain = bytearray(SplitMix64(seed).next_bytes(n_blocks * 64))
    schedule = expand_key(master)
    plain[offset : offset + len(schedule)] = schedule
    return MemoryImage(bytes(plain))


class TestCleanScan:
    def test_finds_key_at_arbitrary_offset(self):
        master = bytes(range(32))
        image = image_with_schedule(master, offset=1234)
        keys = unique_master_keys(find_aes_keys(image, key_bits=256))
        assert keys == [master]

    def test_multiple_sightings_per_schedule(self):
        """A 240-byte schedule matches at 13 window positions."""
        master = b"\x42" * 32
        image = image_with_schedule(master, offset=640)
        matches = [m for m in find_aes_keys(image, 256) if m.master_key == master]
        assert len(matches) == 13

    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    def test_key_sizes(self, key_bits):
        master = bytes(range(key_bits // 8))
        image = image_with_schedule(master, offset=333)
        assert master in unique_master_keys(find_aes_keys(image, key_bits))

    def test_clean_random_memory_finds_nothing(self):
        image = MemoryImage(SplitMix64(1).next_bytes(256 * 64))
        assert find_aes_keys(image, 256) == []

    def test_two_schedules_found(self):
        a, b = b"\x01" * 32, b"\x02" * 32
        plain = bytearray(SplitMix64(2).next_bytes(128 * 64))
        plain[100 : 100 + 240] = expand_key(a)
        plain[4000 : 4000 + 240] = expand_key(b)
        keys = unique_master_keys(find_aes_keys(MemoryImage(bytes(plain)), 256))
        assert set(keys) == {a, b}


class TestDecayTolerance:
    def test_survives_scattered_flips(self):
        master = b"\x99" * 32
        image = image_with_schedule(master, offset=2048)
        data = bytearray(image.data)
        rng = SplitMix64(3)
        for _ in range(6):
            bit = 2048 * 8 + rng.next_below(240 * 8)
            data[bit // 8] ^= 0x80 >> (bit % 8)
        matches = find_aes_keys(MemoryImage(bytes(data)), 256, tolerance_bits=8)
        assert master in unique_master_keys(matches, min_votes=2)


class TestEdgeCases:
    def test_tiny_input(self):
        assert find_aes_keys(b"short", 256) == []

    def test_accepts_raw_bytes(self):
        master = b"\x07" * 32
        blob = bytes(1000) + expand_key(master) + bytes(1000)
        assert master in unique_master_keys(find_aes_keys(blob, 256))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            find_aes_keys(bytes(4096), 256, tolerance_bits=-1)

    def test_min_votes_filters_singletons(self):
        master = b"\x31" * 32
        image = image_with_schedule(master, offset=100)
        matches = find_aes_keys(image, 256)
        assert unique_master_keys(matches, min_votes=100) == []
