"""Property tests: majority voting and schedule error-correction.

Hypothesis drives both correctors through the decay channel the paper
actually faces — asymmetric flips toward each cell's ground state
(true cells discharge to 0, anti-cells to 1; a discharged cell never
recharges) — plus the degenerate shapes (one member, exact ties) that
unit suites tend to miss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.aes_search import AesVariant, vote_correct_table
from repro.attack.keymine import _majority_vote
from repro.crypto.aes import expand_key
from repro.dram.cells import apply_decay, ground_state_pattern
from repro.util.blocks import BLOCK_SIZE


def _reference_majority(members: np.ndarray) -> bytes:
    """Bit-by-bit reference implementation (ties go to 1)."""
    bits = np.unpackbits(members, axis=1)
    out = np.zeros(bits.shape[1], dtype=np.uint8)
    for column in range(bits.shape[1]):
        ones = int(bits[:, column].sum())
        out[column] = 1 if 2 * ones >= members.shape[0] else 0
    return np.packbits(out).tobytes()


def _decayed_members(
    key: np.ndarray, n_members: int, rate: float, seed: int
) -> np.ndarray:
    """Noisy sightings of one key, each decayed toward a per-cell ground."""
    rng = np.random.default_rng(seed)
    ground = ground_state_pattern(BLOCK_SIZE, serial=seed, stripe_bytes=16)
    members = np.repeat(key[None, :], n_members, axis=0).copy()
    for row in members:
        apply_decay(row, ground, rate, rng)
    return members


class TestMajorityVote:
    @given(st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
    def test_single_member_is_returned_verbatim(self, data):
        members = np.frombuffer(data, dtype=np.uint8).reshape(1, BLOCK_SIZE)
        assert _majority_vote(members) == data

    @given(
        st.integers(min_value=2, max_value=9),
        st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matches_bitwise_reference(self, n_members, data, seed):
        key = np.frombuffer(data, dtype=np.uint8)
        members = _decayed_members(key, n_members, rate=0.1, seed=seed)
        assert _majority_vote(members) == _reference_majority(members)

    def test_exact_tie_resolves_toward_one(self):
        members = np.vstack(
            [np.zeros(BLOCK_SIZE, dtype=np.uint8), np.full(BLOCK_SIZE, 0xFF, np.uint8)]
        )
        assert _majority_vote(members) == b"\xff" * BLOCK_SIZE

    @given(
        st.integers(min_value=1, max_value=4),
        st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_minority_decay_is_outvoted(self, n_decayed, data, seed):
        """With a strict majority of clean sightings, the vote is exact."""
        key = np.frombuffer(data, dtype=np.uint8)
        clean = np.repeat(key[None, :], n_decayed + 1, axis=0)
        noisy = _decayed_members(key, n_decayed, rate=0.3, seed=seed)
        members = np.vstack([clean, noisy])
        assert _majority_vote(members) == data


def _random_schedule(key_bits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    master = rng.integers(0, 256, key_bits // 8, dtype=np.uint8).tobytes()
    return np.frombuffer(expand_key(master), dtype=np.uint8)


class TestVoteCorrectTable:
    @given(
        st.sampled_from([128, 192, 256]),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_clean_schedule_is_a_fixpoint(self, key_bits, seed):
        schedule = _random_schedule(key_bits, seed)
        assert np.array_equal(vote_correct_table(schedule.copy(), key_bits), schedule)

    @given(
        st.sampled_from([128, 256]),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_interior_single_flip_is_repaired_exactly(self, key_bits, seed, where):
        """A flip in a word with all three cross-round predictions heals.

        Interior words are predicted independently by the forward,
        backward, and inverse key-schedule relations; three clean
        predictions outvote one decayed observation every time.
        """
        variant = AesVariant(key_bits)
        schedule = _random_schedule(key_bits, seed)
        interior_words = variant.total_words - 2 * variant.nk
        word = variant.nk + (where % interior_words)
        bit = where % 32
        damaged = schedule.copy()
        damaged[4 * word + bit // 8] ^= 0x80 >> (bit % 8)
        assert np.array_equal(vote_correct_table(damaged, key_bits), schedule)

    @settings(deadline=None)
    @given(
        st.sampled_from([128, 256]),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(min_value=0.0, max_value=0.02),
    )
    def test_asymmetric_decay_never_gets_worse(self, key_bits, seed, rate):
        """Correction is monotone under ground-state decay.

        Bits only flip *toward* each cell's ground state (§III-D), so
        the damage is asymmetric; voting must strictly help or leave
        the table alone — never push it further from the truth.
        """
        schedule = _random_schedule(key_bits, seed)
        rng = np.random.default_rng(seed)
        ground = ground_state_pattern(len(schedule), serial=seed, stripe_bytes=32)
        damaged = schedule.copy()
        apply_decay(damaged, ground, rate, rng)
        before = int(np.unpackbits(damaged ^ schedule).sum())
        corrected = vote_correct_table(damaged, key_bits)
        after = int(np.unpackbits(corrected ^ schedule).sum())
        assert after <= before

    def test_too_short_table_is_untouched(self):
        """A 1-word stub (no equations at all) passes through unchanged."""
        stub = np.arange(4, dtype=np.uint8)
        assert np.array_equal(vote_correct_table(stub, 128), stub)
