"""Byte-identical results across the scan executors.

The sharded scan can run serial (one worker, in-process), on a thread
pool (the fused kernels release the GIL; dump, keys, and fingerprint
cache are shared by reference), or on a process pool (isolated,
killable workers attaching published shared-memory segments).  All
three must produce *identical* recoveries — and agree through the
quarantine and checkpoint-resume paths, which is where an executor
could plausibly diverge (different retry accounting, different attach
protocol).
"""

import pytest

from repro.attack.parallel import resilient_recover_keys, shard_image
from repro.attack.sweep import synthetic_dump
from repro.crypto.aes import schedule_bytes
from repro.resilience.executor import STATUS_FROM_CHECKPOINT, STATUS_OK
from repro.resilience.faults import PERMANENT, FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy

N_SHARDS = 4
SEED = 11


@pytest.fixture(scope="module")
def dump():
    image, master, _ = synthetic_dump(bit_error_rate=0.002, seed=SEED)
    return image, master


@pytest.fixture(scope="module")
def serial_scan(dump):
    image, _ = dump
    return resilient_recover_keys(image, key_bits=256, workers=1, n_shards=N_SHARDS)


def _policy():
    return RetryPolicy(max_attempts=2, base_delay_s=0.001, seed=SEED)


def test_serial_baseline_finds_planted_pair(dump, serial_scan):
    _, master = dump
    masters = {r.master_key for r in serial_scan.recovered}
    assert master[:32] in masters and master[32:] in masters
    assert serial_scan.executor == "serial"


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_pool_executors_match_serial_byte_for_byte(dump, serial_scan, executor):
    image, _ = dump
    scan = resilient_recover_keys(
        image, key_bits=256, workers=2, n_shards=N_SHARDS, executor=executor
    )
    assert scan.executor == executor
    # Thread workers share the orchestrator's buffers; process workers
    # attach published segments.
    if executor == "thread":
        assert scan.resource_backend == "buffer"
    assert scan.recovered == serial_scan.recovered


def test_auto_prefers_threads_without_isolation_needs(dump):
    image, _ = dump
    scan = resilient_recover_keys(image, key_bits=256, workers=2, n_shards=N_SHARDS)
    assert scan.executor == "thread"


def test_auto_keeps_process_faults_on_the_process_pool(dump):
    image, _ = dump
    shards = shard_image(image, N_SHARDS, overlap_bytes=schedule_bytes(256) + 64)
    plan = FaultPlan(
        faults=((shards[1].base_offset, FaultSpec(kind="hang", hang_seconds=0.01)),),
        seed=SEED,
    )
    scan = resilient_recover_keys(
        image, key_bits=256, workers=2, n_shards=N_SHARDS,
        retry_policy=_policy(), fault_plan=plan,
    )
    assert scan.executor == "process"


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_quarantine_identical_across_executors(dump, serial_scan, executor):
    """A permanently-crashing shard quarantines identically either way."""
    image, _ = dump
    shards = shard_image(image, N_SHARDS, overlap_bytes=schedule_bytes(256) + 64)
    doomed = shards[3].base_offset  # planted table lives in shard 0
    plan = FaultPlan(
        faults=((doomed, FaultSpec(kind="crash", first_attempts=PERMANENT)),),
        seed=SEED,
    )
    scan = resilient_recover_keys(
        image, key_bits=256, workers=2, n_shards=N_SHARDS,
        retry_policy=_policy(), fault_plan=plan, executor=executor,
    )
    assert scan.executor == executor
    assert scan.quarantined_offsets == [doomed]
    assert not scan.complete
    assert scan.recovered == serial_scan.recovered


def test_resume_crosses_executors(tmp_path, dump, serial_scan):
    """A journal written by a thread run resumes on a process run.

    Run 1 (threads) quarantines one shard, journaling the other three.
    Run 2 (processes) must load those three from the checkpoint, scan
    only the survivor, and converge to the serial baseline.
    """
    image, _ = dump
    checkpoint = tmp_path / "scan.checkpoint.jsonl"
    shards = shard_image(image, N_SHARDS, overlap_bytes=schedule_bytes(256) + 64)
    doomed = shards[2].base_offset
    plan = FaultPlan(
        faults=((doomed, FaultSpec(kind="crash", first_attempts=PERMANENT)),),
        seed=SEED,
    )
    first = resilient_recover_keys(
        image, key_bits=256, workers=2, n_shards=N_SHARDS,
        retry_policy=_policy(), fault_plan=plan,
        checkpoint=checkpoint, executor="thread",
    )
    assert first.executor == "thread"
    assert first.quarantined_offsets == [doomed]

    second = resilient_recover_keys(
        image, key_bits=256, workers=2, n_shards=N_SHARDS,
        retry_policy=_policy(), checkpoint=checkpoint, executor="process",
    )
    assert second.executor == "process"
    assert second.resumed_shards == N_SHARDS - 1
    statuses = {o: out.status for o, out in second.ledger.outcomes.items()}
    assert statuses.pop(doomed) == STATUS_OK
    assert set(statuses.values()) == {STATUS_FROM_CHECKPOINT}
    assert second.complete
    assert second.recovered == serial_scan.recovered
