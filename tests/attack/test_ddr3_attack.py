"""Tests for the DDR3 baseline attacks."""

import pytest

from repro.attack.ddr3_attack import (
    Ddr3ColdBootAttack,
    block_frequency_analysis,
    descramble_with_universal_key,
    recover_universal_key,
)
from repro.crypto.aes import expand_key
from repro.dram.image import MemoryImage
from repro.scrambler.ddr3 import Ddr3Scrambler
from repro.util.rng import SplitMix64


def ddr3_dump(scrambler: Ddr3Scrambler, n_blocks: int = 512, zero_every: int = 3, seed: int = 0) -> bytearray:
    rng = SplitMix64(seed)
    plain = bytearray(rng.next_bytes(n_blocks * 64))
    for b in range(0, n_blocks, zero_every):
        plain[b * 64 : (b + 1) * 64] = bytes(64)
    return bytearray(scrambler.scramble_range(0, bytes(plain)))


class TestFrequencyAnalysis:
    def test_surfaces_all_16_keys(self):
        scrambler = Ddr3Scrambler(boot_seed=2024)
        dump = MemoryImage(bytes(ddr3_dump(scrambler)))
        mined = {c.key for c in block_frequency_analysis(dump, top_n=16)}
        assert mined == set(scrambler.all_keys())

    def test_ordering_by_count(self):
        scrambler = Ddr3Scrambler(boot_seed=7)
        dump = MemoryImage(bytes(ddr3_dump(scrambler)))
        candidates = block_frequency_analysis(dump, top_n=20)
        counts = [c.count for c in candidates]
        assert counts == sorted(counts, reverse=True)

    def test_validates_top_n(self):
        with pytest.raises(ValueError):
            block_frequency_analysis(MemoryImage(bytes(64)), top_n=0)


class TestUniversalKey:
    def test_reboot_reread_collapses(self):
        """The full §II-C scenario: scramble, reboot, read through the new
        scrambler; the result is plaintext XOR one universal key."""
        boot1 = Ddr3Scrambler(boot_seed=1)
        boot2 = Ddr3Scrambler(boot_seed=2)
        rng = SplitMix64(44)
        plain = bytearray(rng.next_bytes(512 * 64))  # zero-heavy plaintext
        for b in range(0, 512, 2):
            plain[b * 64 : (b + 1) * 64] = bytes(64)
        raw = boot1.scramble_range(0, bytes(plain))  # the DRAM contents
        reread = MemoryImage(boot2.descramble_range(0, raw))  # after reboot
        universal = recover_universal_key(reread)
        # Descrambling with the single universal key recovers everything.
        recovered = descramble_with_universal_key(reread, universal)
        assert recovered.data == bytes(plain)

    def test_universal_key_matches_model(self):
        boot1 = Ddr3Scrambler(boot_seed=1)
        plain = bytes(512 * 64)  # all zeros
        raw = boot1.scramble_range(0, plain)
        boot2 = Ddr3Scrambler(boot_seed=2)
        reread = MemoryImage(boot2.descramble_range(0, raw))
        assert recover_universal_key(reread) == boot1.universal_key_against(2)

    def test_key_length_validated(self):
        with pytest.raises(ValueError):
            descramble_with_universal_key(MemoryImage(bytes(64)), bytes(32))


class TestFullDdr3Attack:
    def test_recovers_aes_key_from_scrambled_dump(self):
        scrambler = Ddr3Scrambler(boot_seed=31337)
        dump = ddr3_dump(scrambler, n_blocks=256)
        master = b"\x5c" * 32
        schedule = expand_key(master)
        # Plant the scrambled schedule at an odd alignment.
        offset = 120 * 64 + 21
        plain_patch = bytearray(scrambler.descramble_range(0, bytes(dump)))
        plain_patch[offset : offset + 240] = schedule
        dump = bytearray(scrambler.scramble_range(0, bytes(plain_patch)))
        recovered = Ddr3ColdBootAttack().run(MemoryImage(bytes(dump)))
        assert master in [r.master_key for r in recovered]
