"""Sharded decode: partition-invariance, state surgery, deadline merge.

The contract under test is the one the orchestrator leans on: decoding
a batch across any number of thread shards is byte-identical to the
unsharded call, a deadline mid-decode yields one *full-batch* merged
checkpoint, and that checkpoint resumes correctly under a different
shard count — the shard geometry is a kernel-shape decision, never a
semantic one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.decode import (
    ChannelModel,
    decode_schedules,
)
from repro.attack.decode_shard import (
    decode_schedules_sharded,
    merge_states,
    slice_state,
)
from repro.crypto.aes import expand_key
from repro.resilience.errors import DeadlineExceededError

from .test_decode import _corrupt, _master


def _workload(key_bits: int, n_true: int, n_junk: int, rate: float, seed: int):
    rng = np.random.default_rng(seed)
    tables = [
        _corrupt(expand_key(_master(key_bits, seed + i)), rate, seed + i)
        for i in range(n_true)
    ]
    n_vars = tables[0].size
    tables += [
        rng.integers(0, 256, n_vars, np.uint8) for _ in range(n_junk)
    ]
    return np.vstack(tables)


def _same_result(a, b) -> bool:
    return (
        np.array_equal(a.tables, b.tables)
        and np.array_equal(a.converged, b.converged)
        and np.array_equal(a.syndrome_weight, b.syndrome_weight)
        and np.array_equal(a.table_iterations, b.table_iterations)
    )


class TestPartitionInvariance:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_sharded_matches_unsharded(self, workers):
        observed = _workload(256, 3, 5, 0.03, seed=71)
        channel = ChannelModel.symmetric(0.03)
        dense = decode_schedules(observed, 256, channel)
        sharded = decode_schedules_sharded(
            observed, 256, channel, workers=workers
        )
        assert _same_result(dense, sharded)
        assert dense.converged[:3].all()

    def test_workers_one_delegates(self):
        observed = _workload(128, 2, 2, 0.02, seed=72)
        channel = ChannelModel.symmetric(0.02)
        assert _same_result(
            decode_schedules(observed, 128, channel),
            decode_schedules_sharded(observed, 128, channel, workers=1),
        )

    def test_more_workers_than_tables(self):
        observed = _workload(192, 2, 1, 0.02, seed=73)
        channel = ChannelModel.symmetric(0.02)
        assert _same_result(
            decode_schedules(observed, 192, channel),
            decode_schedules_sharded(observed, 192, channel, workers=16),
        )

    @settings(max_examples=8, deadline=None)
    @given(
        key_bits=st.sampled_from([128, 192, 256]),
        rate=st.floats(min_value=0.0, max_value=0.045),
        to_ground=st.floats(min_value=0.5, max_value=2.0),
        workers=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_partition_invariant_and_exact(
        self, key_bits, rate, to_ground, workers, seed
    ):
        """Across variants, BERs, and asymmetric channels: sharding is
        invisible, and wherever the scheduled decoder converges it must
        agree byte-for-byte with the dense float64 reference."""
        observed = _workload(key_bits, 2, 2, rate, seed)
        channel = ChannelModel(
            rate_to_ground=max(rate, 1e-4) * to_ground,
            rate_from_ground=max(rate, 1e-4),
        )
        fast = decode_schedules(observed, key_bits, channel)
        sharded = decode_schedules_sharded(
            observed, key_bits, channel, workers=workers
        )
        assert _same_result(fast, sharded)
        # Dense reference trajectory: float64, no residual skipping.
        dense = decode_schedules(
            observed,
            key_bits,
            channel,
            message_dtype=np.float64,
            residual_tol=0.0,
        )
        both = fast.converged & dense.converged
        assert np.array_equal(fast.tables[both], dense.tables[both])
        # A table the dense reference decodes is one the scheduled
        # decoder must not walk past (the other direction is fine: the
        # near-codeword stagnation exemption can outlast the reference).
        assert (fast.converged | ~dense.converged).all()


class TestStateSurgery:
    def _context(self):
        observed = _workload(256, 2, 2, 0.05, seed=81)
        channel = ChannelModel.symmetric(0.05)
        return observed, channel

    def _partial_state(self, observed, channel):
        from repro.resilience.deadline import Deadline

        class CountdownDeadline(Deadline):
            def __init__(self, checks: int) -> None:
                object.__setattr__(self, "expires_at", float("inf"))
                object.__setattr__(self, "total_seconds", 3600.0)
                object.__setattr__(self, "checks_left", checks)

            @property
            def expired(self) -> bool:
                left = self.checks_left
                object.__setattr__(self, "checks_left", left - 1)
                return left <= 0

        with pytest.raises(DeadlineExceededError) as err:
            decode_schedules(
                observed, 256, channel, deadline=CountdownDeadline(2)
            )
        return err.value.decode_state

    def test_slice_then_merge_round_trips(self):
        observed, channel = self._context()
        state = self._partial_state(observed, channel)
        idx_a, idx_b = np.array([0, 2]), np.array([1, 3])
        parts = [
            (idx, slice_state(state, idx, observed, None, channel, 256, 0.2))
            for idx in (idx_a, idx_b)
        ]
        assert all(part is not None for _, part in parts)
        merged = merge_states(parts, observed, None, channel, 256, 0.2)
        assert merged.iteration == state.iteration
        assert np.array_equal(merged.messages, state.messages)
        assert merged.digest == state.digest

    def test_slice_of_damaged_state_is_none(self):
        observed, channel = self._context()
        state = self._partial_state(observed, channel)
        truncated = type(state)(
            iteration=state.iteration,
            messages=state.messages[:2],
            digest=state.digest,
            sched=state.sched,
        )
        assert (
            slice_state(
                truncated, np.array([0]), observed, None, channel, 256, 0.2
            )
            is None
        )

    def test_merge_fills_never_run_shards_with_fresh_state(self):
        observed, channel = self._context()
        state = self._partial_state(observed, channel)
        ran = np.array([0, 1])
        missing = np.array([2, 3])
        merged = merge_states(
            [
                (ran, slice_state(state, ran, observed, None, channel, 256, 0.2)),
                (missing, None),
            ],
            observed,
            None,
            channel,
            256,
            0.2,
        )
        assert np.array_equal(merged.messages[ran], state.messages[ran])
        assert np.allclose(merged.messages[missing], 1.0 / 256.0)


class TestDeadlineMergeResume:
    def test_expiry_merges_full_batch_and_resumes_any_geometry(self):
        """Deadline under 2 workers → one full-batch checkpoint →
        resume under 3 workers finishes identically to a straight run."""
        observed = _workload(256, 2, 4, 0.04, seed=91)
        channel = ChannelModel.symmetric(0.04)
        straight = decode_schedules(observed, 256, channel)

        with pytest.raises(DeadlineExceededError) as err:
            decode_schedules_sharded(
                observed, 256, channel, workers=2, deadline=1e-9
            )
        state = err.value.decode_state
        assert state is not None
        assert state.messages.shape[0] == observed.shape[0]

        resumed = decode_schedules_sharded(
            observed, 256, channel, workers=3, state=state
        )
        assert _same_result(straight, resumed)
        resumed_unsharded = decode_schedules(
            observed, 256, channel, state=state
        )
        assert _same_result(straight, resumed_unsharded)
