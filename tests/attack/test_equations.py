"""Tests for the boolean-equation formulation of the invariants."""

import pytest

from repro.attack.equations import (
    consistent_with_invariants,
    invariant_manifold_dimension,
    invariant_system,
    minimum_known_bits_for_unique_key,
    solve_key_from_known_plaintext,
)
from repro.attack.litmus import passes_key_litmus
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.bits import xor_bytes
from repro.util.rng import SplitMix64


class TestInvariantSystem:
    def test_rank_is_192(self):
        """3 independent invariants x 4 sub-words x 16 bits = 192.

        The fourth stated invariant is implied by the other three, so
        the 256 equation rows reduce to rank 192 — the same derivation
        the scrambler model's docstring makes structurally.
        """
        assert invariant_system().rank() == 192

    def test_manifold_dimension_is_320(self):
        # 64+16 free bits per 16-byte sub-word, times four.
        assert invariant_manifold_dimension() == 320

    def test_equivalent_to_litmus_on_keys(self):
        scrambler = Ddr4Scrambler(boot_seed=5)
        for index in (0, 100, 4095):
            key = scrambler.key_for(0, index)
            assert consistent_with_invariants(key)
            assert passes_key_litmus(key)

    def test_equivalent_to_litmus_on_random(self):
        for seed in range(5):
            block = SplitMix64(seed).next_bytes(64)
            assert consistent_with_invariants(block) == passes_key_litmus(block)

    def test_block_length_validated(self):
        with pytest.raises(ValueError):
            consistent_with_invariants(bytes(32))


class TestKnownPlaintextSolver:
    def test_full_zero_block_recovers_key(self):
        """The paper's zero-block trick expressed as 512 known bits."""
        scrambler = Ddr4Scrambler(boot_seed=7)
        key = scrambler.key_for(0, 42)
        scrambled_zero = key  # zeros XOR key
        known = [(0, bit, 0) for bit in range(512)]
        solved = solve_key_from_known_plaintext([scrambled_zero], known)
        assert solved == key

    def test_partial_plaintext_with_invariants(self):
        """The invariants (192 constraints) let 320 known bits suffice."""
        scrambler = Ddr4Scrambler(boot_seed=9)
        key = scrambler.key_for(0, 7)
        plaintext = SplitMix64(3).next_bytes(64)
        scrambled = xor_bytes(plaintext, key)
        import numpy as np

        plain_bits = np.unpackbits(np.frombuffer(plaintext, dtype=np.uint8))
        # Reveal the free coordinates of the invariant manifold: the
        # first 8 bytes + the first word-pair of the second half, per
        # 16-byte sub-word (80 bits x 4 = 320 bits).
        known = []
        for base in (0, 16, 32, 48):
            for byte in list(range(base, base + 8)) + [base + 8, base + 9]:
                for bit in range(8):
                    index = 8 * byte + bit
                    known.append((0, index, int(plain_bits[index])))
        solved = solve_key_from_known_plaintext([scrambled], known)
        assert solved == key

    def test_underdetermined_raises(self):
        scrambler = Ddr4Scrambler(boot_seed=11)
        scrambled = scrambler.key_for(0, 1)  # zeros under the key
        known = [(0, bit, 0) for bit in range(100)]  # far too few
        with pytest.raises(ValueError, match="underdetermined"):
            solve_key_from_known_plaintext([scrambled], known)

    def test_inconsistent_returns_none(self):
        scrambler = Ddr4Scrambler(boot_seed=13)
        scrambled = scrambler.key_for(0, 1)
        known = [(0, bit, 0) for bit in range(512)]
        known.append((0, 0, 1))  # contradicts the first constraint
        assert solve_key_from_known_plaintext([scrambled], known) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_key_from_known_plaintext([], [])
        with pytest.raises(ValueError):
            solve_key_from_known_plaintext([bytes(64)], [(5, 0, 0)])
        with pytest.raises(ValueError):
            solve_key_from_known_plaintext([bytes(64)], [(0, 600, 0)])

    def test_minimum_known_bits(self):
        assert minimum_known_bits_for_unique_key() == 320
