"""Belief-propagation schedule decoding: channel, graph, round trips.

The round-trip property tests are the decode stage's acceptance bar in
miniature: expand a key, corrupt it at a swept BER, decode — byte-exact
recovery below the code's threshold, abstain-not-wrong above it, across
all three AES variants and asymmetric channels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.decode import (
    DEFAULT_DAMPING,
    RATE_CEIL,
    RATE_FLOOR,
    ChannelModel,
    DecodeState,
    block_key_plausibility,
    build_constraint_graph,
    byte_priors,
    clamp_rate,
    context_digest,
    decode_schedule,
    decode_schedules,
    schedule_plausibility,
)
from repro.crypto.aes import expand_key, rounds_for


def _corrupt(schedule: bytes, rate: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    bits = np.unpackbits(np.frombuffer(schedule, dtype=np.uint8))
    bits ^= rng.random(bits.size) < rate
    return np.packbits(bits)


def _master(key_bits: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, key_bits // 8, np.uint8))


class TestRateClamp:
    """Satellite regression: every rate entering a prior is clamped."""

    def test_zero_rate_is_floored(self):
        assert clamp_rate(0.0) == RATE_FLOOR

    def test_half_and_above_is_ceiled(self):
        assert clamp_rate(0.5) == RATE_CEIL
        assert clamp_rate(0.9) == RATE_CEIL

    def test_negative_rate_is_floored(self):
        assert clamp_rate(-0.2) == RATE_FLOOR

    def test_interior_rates_pass_through(self):
        assert clamp_rate(0.0123) == pytest.approx(0.0123)

    def test_symmetric_channel_clamps_its_rate(self):
        channel = ChannelModel.symmetric(0.0)
        assert channel.rate_to_ground == RATE_FLOOR
        p_at, p_off = channel.flip_probabilities(4)
        assert float(p_at.min()) >= RATE_FLOOR
        assert float(p_off.max()) <= RATE_CEIL

    def test_estimators_never_emit_zero_or_half(self):
        """estimate_decay_rate / pool_decay_rate land inside the clamp."""
        from repro.attack.adaptive import estimate_decay_rate, pool_decay_rate
        from repro.attack.keymine import keys_matrix, mine_scrambler_keys
        from repro.attack.sweep import synthetic_dump

        dump, _, _ = synthetic_dump(bit_error_rate=0.0, seed=5)
        estimate = estimate_decay_rate(image=dump)
        assert RATE_FLOOR <= estimate.rate <= RATE_CEIL
        pool = keys_matrix(mine_scrambler_keys(dump))
        assert RATE_FLOOR <= pool_decay_rate(pool) <= RATE_CEIL
        # A prior of literally zero must still come back floored.
        noise = estimate_decay_rate(prior_rate=0.0)
        assert noise.rate == RATE_FLOOR

    def test_channel_rejects_rates_outside_physical_range(self):
        with pytest.raises(ValueError):
            ChannelModel(rate_to_ground=0.6, rate_from_ground=0.01)
        with pytest.raises(ValueError):
            ChannelModel(rate_to_ground=0.01, rate_from_ground=-0.1)


class TestConstraintGraph:
    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    def test_true_schedule_satisfies_every_check(self, key_bits):
        graph = build_constraint_graph(key_bits)
        schedule = np.frombuffer(expand_key(_master(key_bits, 7)), dtype=np.uint8)
        assert schedule.size == graph.n_vars == 16 * (rounds_for(key_bits) + 1)
        assert schedule_plausibility(schedule, None, key_bits) == graph.n_checks

    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    def test_random_bytes_satisfy_almost_none(self, key_bits):
        graph = build_constraint_graph(key_bits)
        rng = np.random.default_rng(3)
        junk = rng.integers(0, 256, graph.n_vars, np.uint8)
        # Expectation is n_checks/256 ≈ 0.8; an order of magnitude of
        # slack keeps this deterministic across numpy versions.
        assert schedule_plausibility(junk, None, key_bits) <= 8

    def test_graph_is_cached(self):
        assert build_constraint_graph(256) is build_constraint_graph(256)

    def test_luts_are_mutually_inverse(self):
        graph = build_constraint_graph(128)
        rows = np.arange(graph.n_checks)[:, None]
        identity = np.arange(256, dtype=np.uint8)[None, :]
        assert (graph.inv_lut[rows, graph.fwd_lut.astype(np.intp)] == identity).all()

    def test_known_mask_excludes_checks(self):
        schedule = np.frombuffer(expand_key(_master(256, 7)), dtype=np.uint8)
        known = np.zeros(schedule.size, dtype=bool)
        assert schedule_plausibility(schedule, known, 256) == 0


class TestBlockKeyPlausibility:
    def test_true_slice_outscores_junk(self):
        schedule = np.frombuffer(expand_key(_master(256, 11)), dtype=np.uint8)
        rng = np.random.default_rng(4)
        rows = np.vstack(
            [schedule[64:128], rng.integers(0, 256, 64, np.uint8)]
        )
        scores = block_key_plausibility(rows, 64, 256)
        assert scores[0] > 20
        assert scores[1] <= 5

    def test_slice_with_no_contained_checks_scores_zero(self):
        scores = block_key_plausibility(np.zeros((2, 4), np.uint8), 0, 256)
        assert (scores == 0).all()


class TestChannelPriors:
    def test_clean_observation_prefers_observed_value(self):
        observed = np.array([0x3C, 0xA5], dtype=np.uint8)
        prior = byte_priors(observed, ChannelModel.symmetric(0.01))
        assert (prior.argmax(axis=-1) == observed).all()

    def test_unknown_bytes_get_flat_priors(self):
        observed = np.array([0x3C], dtype=np.uint8)
        prior = byte_priors(
            observed, ChannelModel.symmetric(0.01), known=np.array([False])
        )
        assert np.allclose(prior, prior[..., :1])

    def test_asymmetric_channel_distrusts_ground_reads(self):
        """At ground, the observed bit may have leaked there: p_flip is
        the to-ground rate; off ground it is the near-zero reverse."""
        channel = ChannelModel(rate_to_ground=0.2, rate_from_ground=0.001)
        p_at, p_off = channel.flip_probabilities(1)
        assert float(p_at[0, 0]) > float(p_off[0, 0])


class TestDecodeRoundTrip:
    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    def test_byte_exact_below_threshold(self, key_bits):
        master = _master(key_bits, 21)
        observed = _corrupt(expand_key(master), 0.04, seed=21)
        result = decode_schedule(
            observed, key_bits, ChannelModel.symmetric(0.04)
        )
        assert not result.abstained()
        assert result.tables[0, : key_bits // 8].tobytes() == master

    @pytest.mark.parametrize("key_bits", [128, 256])
    def test_abstains_not_wrong_above_threshold(self, key_bits):
        master = _master(key_bits, 22)
        observed = _corrupt(expand_key(master), 0.35, seed=22)
        result = decode_schedule(
            observed, key_bits, ChannelModel.symmetric(0.35), max_iters=24
        )
        if result.abstained():
            assert result.syndrome_weight[0] > 0
        else:
            # Convergence IS the correctness certificate: a converged
            # table is a valid codeword, and at any decodable distance
            # the nearest codeword is the true one.
            assert result.tables[0, : key_bits // 8].tobytes() == master

    def test_erased_master_is_reconstructed_from_the_tail(self):
        """known=False over the whole first round: the graph alone must
        pull the key back out of the redundant tail."""
        master = _master(256, 23)
        schedule = np.frombuffer(expand_key(master), dtype=np.uint8)
        known = np.ones(schedule.size, dtype=bool)
        known[:16] = False
        observed = schedule.copy()
        observed[:16] = 0
        result = decode_schedule(
            observed, 256, ChannelModel.symmetric(0.001), known=known
        )
        assert not result.abstained()
        assert result.tables[0, :32].tobytes() == master

    def test_batch_decode_matches_single(self):
        masters = [_master(256, s) for s in (31, 32)]
        observed = np.vstack(
            [_corrupt(expand_key(m), 0.03, seed=s) for s, m in enumerate(masters)]
        )
        result = decode_schedules(observed, 256, ChannelModel.symmetric(0.03))
        assert result.converged.all()
        for row, master in zip(result.tables, masters):
            assert row[:32].tobytes() == master

    def test_abstained_posteriors_stay_conflicted(self):
        """A converged decode is near-certain; an abstained one carries
        visibly conflicted posteriors — the signal confidence_score is
        recalibrated from."""
        master = _master(256, 33)
        converged = decode_schedule(
            _corrupt(expand_key(master), 0.03, seed=33),
            256,
            ChannelModel.symmetric(0.03),
        )
        rng = np.random.default_rng(33)
        junk = rng.integers(0, 256, 240, np.uint8)
        abstained = decode_schedule(
            junk, 256, ChannelModel.symmetric(0.03), max_iters=24
        )
        assert not converged.abstained()
        assert abstained.abstained()
        assert float(converged.certainty[0]) > float(abstained.certainty[0])
        assert float(converged.posterior_entropy[0]) < float(
            abstained.posterior_entropy[0]
        )

    @settings(max_examples=12, deadline=None)
    @given(
        key_bits=st.sampled_from([128, 192, 256]),
        rate=st.floats(min_value=0.0, max_value=0.05),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_decodable_channels_round_trip(self, key_bits, rate, seed):
        """expand → corrupt at BER ≤ 0.05 → decode → the exact master."""
        master = _master(key_bits, seed)
        observed = _corrupt(expand_key(master), rate, seed)
        result = decode_schedule(
            observed, key_bits, ChannelModel.symmetric(max(rate, 1e-4))
        )
        assert not result.abstained()
        assert result.tables[0, : key_bits // 8].tobytes() == master

    @settings(max_examples=8, deadline=None)
    @given(
        rate=st.floats(min_value=0.30, max_value=0.45),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_hopeless_channels_never_hallucinate(self, rate, seed):
        """Past the code's horizon the decoder abstains or is right —
        it never converges onto a *different* key."""
        master = _master(256, seed)
        observed = _corrupt(expand_key(master), rate, seed)
        result = decode_schedule(
            observed, 256, ChannelModel.symmetric(rate), max_iters=16
        )
        if not result.abstained():
            assert result.tables[0, :32].tobytes() == master

    @settings(max_examples=8, deadline=None)
    @given(
        to_ground=st.floats(min_value=0.01, max_value=0.08),
        from_ground=st.floats(min_value=0.0, max_value=0.004),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_asymmetric_channels_round_trip(
        self, to_ground, from_ground, seed
    ):
        """Ground-state decay: 1→0 flips at the decay rate, 0→1 nearly
        never.  The matched asymmetric prior must still round-trip."""
        master = _master(256, seed)
        bits = np.unpackbits(np.frombuffer(expand_key(master), dtype=np.uint8))
        rng = np.random.default_rng(seed)
        drop = (bits == 1) & (rng.random(bits.size) < to_ground)
        rise = (bits == 0) & (rng.random(bits.size) < from_ground)
        observed = np.packbits(bits ^ drop ^ rise)
        channel = ChannelModel(
            rate_to_ground=to_ground, rate_from_ground=max(from_ground, 1e-6)
        )
        result = decode_schedule(observed, 256, channel)
        assert not result.abstained()
        assert result.tables[0, :32].tobytes() == master


class TestDecodeStateRoundTrip:
    def test_state_dict_round_trips_bit_exactly(self):
        state = DecodeState(
            iteration=9,
            messages=np.random.default_rng(1).random((1, 4, 3, 256)),
            digest="abc",
        )
        back = DecodeState.from_dict(state.to_dict())
        assert back is not None
        assert back.iteration == 9 and back.digest == "abc"
        assert (back.messages == state.messages).all()

    def test_corrupt_payload_is_rejected(self):
        state = DecodeState(
            iteration=1, messages=np.zeros((1, 1, 3, 256)), digest="d"
        )
        record = state.to_dict()
        record["crc32"] ^= 1
        assert DecodeState.from_dict(record) is None
        assert DecodeState.from_dict({"iteration": 0}) is None

    def test_digest_pins_the_context(self):
        observed = np.zeros(240, dtype=np.uint8)
        channel = ChannelModel.symmetric(0.01)
        base = context_digest(observed, None, channel, 256, DEFAULT_DAMPING)
        other_table = context_digest(
            np.ones(240, dtype=np.uint8), None, channel, 256, DEFAULT_DAMPING
        )
        other_channel = context_digest(
            observed, None, ChannelModel.symmetric(0.02), 256, DEFAULT_DAMPING
        )
        assert base != other_table
        assert base != other_channel

    def test_interrupted_decode_resumes_byte_identically(self):
        """Deadline mid-decode → checkpointed messages → resume lands on
        the same table as an uninterrupted run (the --resume bar)."""
        from repro.resilience.deadline import Deadline
        from repro.resilience.errors import DeadlineExceededError

        class CountdownDeadline(Deadline):
            """Expires after a fixed number of .expired polls."""

            def __init__(self, checks: int) -> None:
                object.__setattr__(self, "expires_at", float("inf"))
                object.__setattr__(self, "total_seconds", 3600.0)
                object.__setattr__(self, "checks_left", checks)

            @property
            def expired(self) -> bool:
                left = self.checks_left
                object.__setattr__(self, "checks_left", left - 1)
                return left <= 0

        master = _master(256, 41)
        observed = _corrupt(expand_key(master), 0.07, seed=41)
        channel = ChannelModel.symmetric(0.07)
        straight = decode_schedule(observed, 256, channel)
        assert not straight.abstained()
        assert straight.iterations >= 3

        with pytest.raises(DeadlineExceededError) as err:
            decode_schedule(
                observed, 256, channel, deadline=CountdownDeadline(1)
            )
        state = err.value.decode_state
        assert state is not None and state.iteration > 0

        resumed = decode_schedules(
            observed[None, :], 256, channel, state=state
        )
        assert not resumed.abstained()
        assert (resumed.tables == straight.tables).all()
        assert resumed.tables[0, :32].tobytes() == master


class TestWatchdogHeartbeat:
    def test_progress_hook_fires_during_long_decodes(self):
        """Satellite: the decode loop must beat the watchdog — sweeps
        are slow enough that a silent loop reads as a stalled worker."""
        beats = []
        observed = _corrupt(expand_key(_master(256, 51)), 0.06, seed=51)
        decode_schedule(
            observed,
            256,
            ChannelModel.symmetric(0.06),
            on_progress=lambda: beats.append(1),
            beat_every=1,
        )
        assert len(beats) >= 3

    def test_stagnation_abstains_early(self):
        """An undecodable table stops at the stall window, not at
        max_iters — the wall-clock guard behind the abstain path."""
        rng = np.random.default_rng(6)
        junk = rng.integers(0, 256, 240, np.uint8)
        result = decode_schedule(
            junk,
            256,
            ChannelModel.symmetric(0.05),
            max_iters=72,
            stall_sweeps=6,
        )
        assert result.abstained()
        assert result.iterations < 72


class TestSweepScheduling:
    """The residual-scheduled rewrite's own contracts."""

    def test_hopeless_junk_abstains_at_the_probe(self):
        """A fully observed random table freezes right after the probe
        sweeps — not after dribbling to the stagnation limit."""
        from repro.attack.decode import _HOPELESS_PROBE_SWEEPS

        rng = np.random.default_rng(61)
        junk = rng.integers(0, 256, 240, np.uint8)
        result = decode_schedule(junk, 256, ChannelModel.symmetric(0.04))
        assert result.abstained()
        assert int(result.table_iterations[0]) == _HOPELESS_PROBE_SWEEPS

    def test_hopeless_triage_spares_erased_tables(self):
        """A table with a big erased span holds its syndrome high for
        honest reasons; triage must not abstain it."""
        master = _master(256, 62)
        observed = _corrupt(expand_key(master), 0.01, seed=62)
        known = np.ones(observed.size, dtype=bool)
        known[:120] = False  # half the schedule erased
        observed[:120] = 0
        result = decode_schedule(
            observed, 256, ChannelModel.symmetric(0.01), known=known
        )
        assert not result.abstained()
        assert result.tables[0, :32].tobytes() == master

    def test_near_codeword_tables_outlast_stagnation(self):
        """Regression (hypothesis-found): AES-128 at BER 0.03125 sits at
        syndrome 1–2 for more than the stall window before snapping to
        the codeword at sweep 13.  The stagnation abstain must not fire
        inside the near-codeword band."""
        master = _master(128, 3053)
        observed = _corrupt(expand_key(master), 0.03125, seed=3053)
        result = decode_schedule(
            observed, 128, ChannelModel.symmetric(0.03125)
        )
        assert not result.abstained()
        assert result.tables[0, :16].tobytes() == master

    def test_scheduled_f32_matches_dense_f64_outcomes(self):
        """The fast path may skip work and round messages, but wherever
        either path converges both must land on the same bytes."""
        observed = np.vstack(
            [
                _corrupt(expand_key(_master(256, s)), 0.035, seed=s)
                for s in (63, 64, 65)
            ]
        )
        channel = ChannelModel.symmetric(0.035)
        fast = decode_schedules(observed, 256, channel)
        dense = decode_schedules(
            observed, 256, channel,
            message_dtype=np.float64, residual_tol=0.0,
        )
        assert np.array_equal(fast.converged, dense.converged)
        assert np.array_equal(
            fast.tables[fast.converged], dense.tables[dense.converged]
        )

    def test_keep_state_attaches_a_resumable_snapshot(self):
        observed = _corrupt(expand_key(_master(256, 66)), 0.05, seed=66)
        channel = ChannelModel.symmetric(0.05)
        partial = decode_schedules(
            observed[None, :], 256, channel, max_iters=3, keep_state=True
        )
        assert partial.state is not None
        assert partial.state.iteration == 3
        bare = decode_schedules(observed[None, :], 256, channel, max_iters=3)
        assert bare.state is None
        resumed = decode_schedules(
            observed[None, :], 256, channel, state=partial.state
        )
        straight = decode_schedules(observed[None, :], 256, channel)
        assert (resumed.tables == straight.tables).all()
        assert np.array_equal(resumed.converged, straight.converged)

    def test_sweep_telemetry_reports_scheduling_savings(self):
        """checks_updated (work done) must undercut checks_dense (work a
        dense sweep would have done) once parts of the graph go quiet —
        the near-codeword band is where residual scheduling pays, and
        these are the counters the adaptive report surfaces."""
        observed = _corrupt(expand_key(_master(128, 3053)), 0.03125, seed=3053)
        result = decode_schedule(
            observed, 128, ChannelModel.symmetric(0.03125)
        )
        assert result.checks_dense > 0
        assert 0 < result.checks_updated < result.checks_dense


class TestDecodePlanTransport:
    """The shared-plan publication path the shard workers ride."""

    def test_export_attach_round_trip(self):
        from repro.attack.decode import DecodePlan, decode_plan

        plan = decode_plan(192)
        clone = DecodePlan.attach(plan.export_blob())
        assert clone.key_bits == plan.key_bits
        for field in ("check_vars", "fwd_lut", "inv_lut", "var_in_edges",
                      "fwd_take", "inv_take"):
            assert np.array_equal(getattr(clone, field), getattr(plan, field))

    def test_attach_rejects_foreign_blobs(self):
        from repro.attack.decode import DecodePlan

        with pytest.raises(ValueError):
            DecodePlan.attach(b"not a decode plan")

    def test_publish_then_install_ref(self):
        from repro.attack.decode import (
            decode_plan,
            install_plan_ref,
            publish_plan,
        )

        published = publish_plan(128)
        try:
            installed = install_plan_ref(published.ref)
        finally:
            published.unlink()
        reference = decode_plan(128)
        assert installed.key_bits == 128
        assert np.array_equal(installed.fwd_take, reference.fwd_take)
        # The installed plan must be live, not a dangling view.
        master = _master(128, 68)
        observed = _corrupt(expand_key(master), 0.02, seed=68)
        result = decode_schedule(observed, 128, ChannelModel.symmetric(0.02))
        assert result.tables[0, :16].tobytes() == master
