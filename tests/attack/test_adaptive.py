"""Decay-adaptive recovery: estimation, budget ladder, triage, engine."""

import numpy as np
import pytest

from repro.attack.adaptive import (
    STRICT_STAGE,
    AdaptiveBudget,
    AdaptiveRecoveryEngine,
    BudgetStage,
    DecayEstimate,
    estimate_decay_rate,
    pool_decay_rate,
    stage_for_rate,
    triage_regions,
)
from repro.attack.aes_search import confidence_score
from repro.attack.keymine import CandidateKey, keys_matrix, mine_scrambler_keys
from repro.attack.sweep import synthetic_dump
from repro.dram.image import MemoryImage
from repro.resilience.errors import (
    MixedScramblerRegionError,
    RegionQuarantineError,
    TornRegionError,
)
from repro.util.blocks import BLOCK_SIZE


class TestDecayEstimation:
    @pytest.mark.parametrize("true_rate", [0.004, 0.012, 0.020])
    def test_litmus_mismatch_estimator_tracks_the_channel(self, true_rate):
        dump, _, _ = synthetic_dump(bit_error_rate=true_rate, seed=5)
        estimate = estimate_decay_rate(image=dump)
        assert estimate.source == "litmus-mismatch"
        assert estimate.rate == pytest.approx(true_rate, rel=0.35)

    def test_clean_dump_estimates_near_zero(self):
        dump, _, _ = synthetic_dump(bit_error_rate=0.0, seed=5)
        estimate = estimate_decay_rate(image=dump)
        assert estimate.rate < 0.001

    def test_prior_when_nothing_measurable(self):
        rng = np.random.default_rng(3)
        noise = MemoryImage(rng.integers(0, 256, 64 * BLOCK_SIZE, np.uint8).tobytes())
        estimate = estimate_decay_rate(image=noise, prior_rate=0.007)
        assert estimate.source == "prior"
        assert estimate.rate == 0.007
        assert estimate.sample_bits == 0

    def test_mined_support_beats_image(self):
        dump, _, _ = synthetic_dump(bit_error_rate=0.01, seed=5)
        candidates = [
            CandidateKey(bytes(64), count=4, litmus_mismatch_bits=400, support_bits=40_000)
        ]
        estimate = estimate_decay_rate(candidates=candidates, image=dump)
        assert estimate.source == "mined-support"
        assert estimate.rate == pytest.approx(0.01)

    def test_reference_map_wins_over_everything(self):
        from repro.analysis.decay_map import decay_map

        dump, _, _ = synthetic_dump(bit_error_rate=0.008, seed=5)
        reference, _, _ = synthetic_dump(bit_error_rate=0.0, seed=5)
        mapped = decay_map(reference, dump)
        estimate = estimate_decay_rate(reference_map=mapped, image=dump)
        assert estimate.source == "decay-map"
        assert estimate.rate == pytest.approx(0.008, rel=0.25)

    def test_pool_decay_rate_zero_for_clean_pool(self):
        dump, _, _ = synthetic_dump(bit_error_rate=0.0, seed=5)
        pool = keys_matrix(mine_scrambler_keys(dump))
        assert pool_decay_rate(pool) == pytest.approx(0.0, abs=1e-6)

    def test_decayed_pool_carries_residual_rate(self):
        dump, _, _ = synthetic_dump(bit_error_rate=0.012, seed=5)
        pool = keys_matrix(mine_scrambler_keys(dump, tolerance_bits=32))
        assert pool_decay_rate(pool) > 0.005

    def test_estimate_validates_range(self):
        with pytest.raises(ValueError):
            DecayEstimate(rate=0.5, source="prior", sample_bits=0)


class TestBudgetLadder:
    def test_strict_stage_matches_the_papers_constants(self):
        assert STRICT_STAGE.litmus_tolerance_bits == 16
        assert STRICT_STAGE.verify_tolerance_bits == 16
        assert STRICT_STAGE.keyfind_tolerance_bits == 8
        assert STRICT_STAGE.schedule_vote is False

    def test_ladder_starts_strict_and_widens(self):
        estimate = DecayEstimate(rate=0.015, source="prior", sample_bits=0)
        stages = AdaptiveBudget(estimate).stages()
        assert stages[0] == STRICT_STAGE
        tolerances = [s.litmus_tolerance_bits for s in stages]
        assert tolerances == sorted(tolerances)
        assert stages[-1].litmus_tolerance_bits > 16
        assert all(s.schedule_vote for s in stages[1:])

    def test_budgets_scale_with_rate(self):
        low = stage_for_rate("calibrated", 0.004, cost=2)
        high = stage_for_rate("calibrated", 0.02, cost=2)
        assert high.litmus_tolerance_bits > low.litmus_tolerance_bits
        assert high.verify_tolerance_bits > low.verify_tolerance_bits
        assert high.accept_mismatch_fraction > low.accept_mismatch_fraction

    def test_total_work_trims_the_ladder(self):
        estimate = DecayEstimate(rate=0.02, source="prior", sample_bits=0)
        assert len(AdaptiveBudget(estimate, total_work=1).stages()) == 1
        assert len(AdaptiveBudget(estimate, total_work=6).stages()) == 3

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            BudgetStage("bad", 16, 16, 16, 8, 0.6, 1, False)
        with pytest.raises(ValueError):
            BudgetStage("bad", -1, 16, 16, 8, 0.05, 1, False)


class TestConfidenceCalibration:
    def test_residual_above_the_channel_costs_confidence(self):
        explained = confidence_score(0.01, decay_rate=0.01)
        surprising = confidence_score(0.05, decay_rate=0.01)
        assert surprising < explained

    def test_worse_channel_never_raises_confidence(self):
        scores = [
            confidence_score(rate, decay_rate=rate)
            for rate in (0.002, 0.008, 0.012, 0.016, 0.020)
        ]
        assert scores == sorted(scores, reverse=True)

    def test_bounded_in_unit_interval(self):
        assert 0.0 <= confidence_score(0.4, decay_rate=0.0, coverage=0.1) <= 1.0
        assert confidence_score(0.0, decay_rate=0.0) == pytest.approx(1.0)


class TestTriage:
    def test_healthy_dump_is_one_extent(self):
        dump, _, _ = synthetic_dump(bit_error_rate=0.002, seed=5)
        candidates = mine_scrambler_keys(dump)
        extents, quarantined = triage_regions(dump, candidates, 16, 16)
        assert quarantined == []
        assert extents == [(0, len(dump))]

    def test_torn_region_is_quarantined(self):
        dump, _, _ = synthetic_dump(bit_error_rate=0.002, seed=5)
        region = 256 * 1024
        torn = dump.data[:region] + b"\xaa" * region + dump.data[2 * region :]
        image = MemoryImage(torn)
        candidates = mine_scrambler_keys(image)
        extents, quarantined = triage_regions(image, candidates, 16, 16)
        assert len(quarantined) == 1
        error = quarantined[0]
        assert isinstance(error, TornRegionError)
        assert error.offset == region and error.length == region
        assert error.to_dict()["reason"] == "torn"
        covered = sum(length for _, length in extents)
        assert covered == len(image) - region

    def test_foreign_keystream_is_flagged_mixed(self):
        dump, _, _ = synthetic_dump(bit_error_rate=0.002, seed=5)
        other, _, _ = synthetic_dump(bit_error_rate=0.002, seed=99)
        region = 256 * 1024
        # A coherent keystream from a different scrambler seed covers
        # the head: litmus-passing blocks that merge with each other
        # but with nothing in the dump-wide pool.
        foreign = mine_scrambler_keys(other)[0].key
        stitched = MemoryImage(foreign * (region // len(foreign)) + dump.data[region:])
        candidates = mine_scrambler_keys(MemoryImage(bytes(dump.data[region:])))
        _, quarantined = triage_regions(stitched, candidates, 16, 16)
        mixed = [e for e in quarantined if isinstance(e, MixedScramblerRegionError)]
        assert len(mixed) == 1
        assert mixed[0].offset == 0 and mixed[0].length == region

    def test_diagnostics_are_structured(self):
        error = TornRegionError(0x1000, 0x2000, "constant fill")
        record = error.to_dict()
        assert record["offset"] == 0x1000 and record["length"] == 0x2000
        assert isinstance(error, RegionQuarantineError)


class TestEngine:
    def test_beyond_the_seed_cliff_adaptive_still_recovers(self):
        """At 1.2% BER the fixed budgets recover nothing; adaptive must."""
        from repro.attack.pipeline import Ddr4ColdBootAttack

        dump, master, _ = synthetic_dump(bit_error_rate=0.012, seed=5)
        fixed = Ddr4ColdBootAttack().run(dump)
        assert fixed.recovered_keys == []

        result = AdaptiveRecoveryEngine().recover(dump)
        truth = {master[:32], master[32:]}
        assert truth <= set(result.masters)
        assert result.stages_run[0] == "strict"
        assert len(result.stages_run) >= 2
        assert all(r.confidence > 0.0 for r in result.recovered)

    def test_clean_dump_stops_at_strict(self):
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, seed=5)
        result = AdaptiveRecoveryEngine().recover(dump)
        assert result.stages_run == ["strict"]
        assert result.work_spent == 1
        assert {master[:32], master[32:]} <= set(result.masters)

    def test_summary_is_json_ready(self):
        import json

        dump, _, _ = synthetic_dump(bit_error_rate=0.0, seed=5)
        result = AdaptiveRecoveryEngine().recover(dump)
        digest = json.loads(json.dumps(result.summary()))
        assert digest["decay_source"] in ("litmus-mismatch", "mined-support", "prior")
        assert digest["n_recovered"] == len(result.recovered)
        assert digest["stages_run"] == ["strict"]

    def test_keyfind_stops_at_strict_on_clean_memory(self):
        from repro.crypto.aes import expand_key

        rng = np.random.default_rng(11)
        data = bytearray(rng.integers(0, 256, 64 * 1024, np.uint8).tobytes())
        master = bytes(rng.integers(0, 256, 32, np.uint8))
        schedule = expand_key(master)
        data[4096 : 4096 + len(schedule)] = schedule
        matches, stages_run = AdaptiveRecoveryEngine().keyfind(MemoryImage(bytes(data)))
        assert stages_run == ["strict"]
        assert any(m.master_key == master for m in matches)


class TestDecodedRung:
    """The belief-propagation rung and the ladder reshaping around it."""

    def test_ladder_tops_out_with_the_decoded_stage(self):
        from repro.attack.adaptive import decode_stage_for_rate

        estimate = DecayEstimate(rate=0.02, source="prior", sample_bits=0)
        stages = AdaptiveBudget(estimate, total_work=10).stages()
        assert stages[-1].name == "decoded"
        assert stages[-1] == decode_stage_for_rate(0.02)
        assert stages[-1].schedule_decode

    def test_classical_rungs_drop_past_the_ceiling(self):
        """Past CLASSICAL_CEILING_RATE the calibrated/widened budgets
        are hopeless (the v1 crossover was 0.020) and slow; the ladder
        must jump straight from strict to decoded."""
        from repro.attack.adaptive import CLASSICAL_CEILING_RATE

        estimate = DecayEstimate(
            rate=CLASSICAL_CEILING_RATE + 0.004, source="prior", sample_bits=0
        )
        names = [s.name for s in AdaptiveBudget(estimate, total_work=10).stages()]
        assert names == ["strict", "decoded"]

    def test_classical_rungs_survive_below_the_ceiling(self):
        estimate = DecayEstimate(rate=0.015, source="prior", sample_bits=0)
        names = [s.name for s in AdaptiveBudget(estimate, total_work=10).stages()]
        assert names == ["strict", "calibrated", "widened", "decoded"]

    def test_decoded_fits_the_default_budget_past_the_ceiling(self):
        """strict(1) + decoded(4) = 5 ≤ the default total_work of 6 —
        the decode escalation is reachable without any budget bump
        exactly where it is the only remaining option."""
        estimate = DecayEstimate(rate=0.04, source="prior", sample_bits=0)
        names = [s.name for s in AdaptiveBudget(estimate).stages()]
        assert names == ["strict", "decoded"]

    def test_max_stage_caps_the_ladder(self):
        estimate = DecayEstimate(rate=0.015, source="prior", sample_bits=0)
        budget = AdaptiveBudget(estimate, total_work=10, max_stage="calibrated")
        assert [s.name for s in budget.stages()] == ["strict", "calibrated"]
        with pytest.raises(ValueError):
            AdaptiveBudget(estimate, max_stage="turbo")

    def test_engine_rejects_unknown_max_stage(self):
        with pytest.raises(ValueError):
            AdaptiveRecoveryEngine(max_stage="turbo")


class TestConfidenceFloor:
    def test_under_floor_recoveries_do_not_stop_escalation(self):
        """A stage that returns only junk-grade recoveries (confidence
        below STOP_CONFIDENCE_FLOOR) must not freeze the ladder — the
        spurious-key failure mode the floor exists to stop."""
        from repro.attack.adaptive import STOP_CONFIDENCE_FLOOR

        # True keys in the measured envelope score >= ~0.05; the floor
        # must sit well under them and well over junk's ~0.001.
        assert 0.001 < STOP_CONFIDENCE_FLOOR <= 0.05


class TestDecodedEngineEndToEnd:
    def test_far_beyond_the_classical_crossover(self):
        """At 4% BER — double the v1 crossover — every classical stage
        recovers nothing; the decoded stage must return both masters
        byte-exact with zero spurious keys."""
        dump, master, _ = synthetic_dump(bit_error_rate=0.04, seed=5)
        result = AdaptiveRecoveryEngine(key_bits=256, total_work=10).recover(dump)
        truth = {master[:32], master[32:]}
        assert set(result.masters) == truth
        assert result.stages_run == ["strict", "decoded"]
        assert result.decode is not None
        assert result.decode["converged"] >= 2
        assert all(r.confidence > 0.0 for r in result.recovered)

    def test_hopeless_channel_abstains_not_wrong(self):
        """Past the decode horizon the engine must return nothing at
        all — never a plausible-looking wrong key."""
        dump, _, _ = synthetic_dump(bit_error_rate=0.10, seed=5)
        result = AdaptiveRecoveryEngine(key_bits=256, total_work=10).recover(dump)
        assert result.masters == []
        assert result.stages_run[-1] == "decoded"

    def test_summary_carries_stage_seconds_and_decode(self):
        import json

        dump, _, _ = synthetic_dump(bit_error_rate=0.0, seed=5)
        result = AdaptiveRecoveryEngine().recover(dump)
        digest = json.loads(json.dumps(result.summary()))
        assert set(digest["stage_seconds"]) == set(digest["stages_run"])
        assert all(s >= 0.0 for s in digest["stage_seconds"].values())
