"""Tests for the physical cold-boot procedures."""

import pytest

from repro.attack.coldboot import TransferConditions, cold_boot_transfer, reverse_cold_boot
from repro.victim.machine import TABLE_I_MACHINES, Machine


def make_machines(mem: int = 1 << 18):
    victim = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=mem, machine_id=1)
    attacker = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=mem, machine_id=2)
    return victim, attacker


class TestReverseColdBoot:
    def test_zero_fill_reveals_keystream(self):
        victim, _ = make_machines()
        keystream = reverse_cold_boot(victim)
        for block in (64, 100, 4095):
            expected = victim.scrambler.key_for_address(block * 64)
            assert keystream.block(block) == expected

    def test_ground_state_profiling_variant(self):
        victim, _ = make_machines()
        keystream = reverse_cold_boot(victim, use_ground_state=True)
        for block in (64, 2000):
            assert keystream.block(block) == victim.scrambler.key_for_address(block * 64)

    def test_requires_running_machine(self):
        victim, _ = make_machines()
        victim.shutdown()
        with pytest.raises(RuntimeError):
            reverse_cold_boot(victim)


class TestColdBootTransfer:
    def test_dump_is_double_scrambled(self):
        victim, attacker = make_machines()
        victim.write(0x8000, b"S" * 64)
        victim_key = victim.scrambler.key_for_address(0x8000)
        dump = cold_boot_transfer(victim, attacker, TransferConditions(transfer_seconds=0.0))
        attacker_key = attacker.scrambler.key_for_address(0x8000)
        block = dump.block(0x8000 // 64)
        expected = bytes(
            b"S"[0] ^ kv ^ ka for kv, ka in zip(victim_key, attacker_key)
        )
        assert block == expected

    def test_decay_tracks_conditions(self):
        victim_cold, attacker_cold = make_machines()
        victim_warm = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=1)
        attacker_warm = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=1 << 18, machine_id=2)
        # Above the attacker's 16 KiB boot-pollution footprint, and big
        # enough that decayed bits dominate the comparison.
        payload = bytes(range(256)) * 512  # 128 KiB
        victim_cold.write(64 * 1024, payload)
        victim_warm.write(64 * 1024, payload)
        cold = cold_boot_transfer(
            victim_cold, attacker_cold, TransferConditions(temperature_c=-25.0, transfer_seconds=5.0)
        )
        warm = cold_boot_transfer(
            victim_warm, attacker_warm, TransferConditions(temperature_c=20.0, transfer_seconds=5.0)
        )
        clean_victim, clean_attacker = make_machines()
        clean_victim.write(64 * 1024, payload)
        clean = cold_boot_transfer(
            clean_victim, clean_attacker, TransferConditions(transfer_seconds=0.0)
        )
        assert cold.bit_error_rate(clean) < warm.bit_error_rate(clean)
        assert cold.bit_error_rate(clean) < 0.02

    def test_rejects_powered_off_victim(self):
        victim, attacker = make_machines()
        victim.shutdown()
        with pytest.raises(RuntimeError):
            cold_boot_transfer(victim, attacker)

    def test_victim_is_dead_after_extraction(self):
        victim, attacker = make_machines()
        cold_boot_transfer(victim, attacker)
        assert not victim.powered
        assert victim.modules[0] is None


class TestTransferChannel:
    """The bridge from physical transfer conditions to decode priors."""

    def profile(self):
        from repro.dram.retention import MODULE_PROFILES

        return MODULE_PROFILES["DDR4_A"]

    def test_expected_rate_is_half_the_vulnerable_flip_fraction(self):
        from repro.attack.decode import RATE_CEIL, RATE_FLOOR

        conditions = TransferConditions(transfer_seconds=10.0, temperature_c=20.0)
        profile = self.profile()
        rate = conditions.expected_bit_error_rate(profile)
        flip = profile.decay.flip_fraction(10.0, 20.0)
        assert RATE_FLOOR <= rate <= RATE_CEIL
        assert rate == pytest.approx(min(RATE_CEIL, max(RATE_FLOOR, 0.5 * flip)))

    def test_colder_transfers_cost_fewer_flips(self):
        profile = self.profile()
        warm = TransferConditions(transfer_seconds=10.0, temperature_c=30.0)
        cold = TransferConditions(transfer_seconds=10.0, temperature_c=-40.0)
        assert cold.expected_bit_error_rate(profile) < warm.expected_bit_error_rate(profile)

    def test_channel_model_is_one_directional(self):
        conditions = TransferConditions(transfer_seconds=5.0, temperature_c=20.0)
        channel = conditions.channel_model(self.profile(), ground=b"\x00")
        assert channel.rate_to_ground > channel.rate_from_ground
        assert channel.ground == b"\x00"
