"""Zero-copy shard dispatch: tiny payloads, shared memory, pool rebuilds.

The sharded scan publishes the dump and key matrix once (POSIX shared
memory when a pool is used) and ships each shard as ``(offset, length)``.
These tests pin the three load-bearing properties:

* a shard task's pickled payload stays under 1 KiB no matter how large
  the dump grows;
* :class:`SharedDumpBuffer` attach/close never tears the segment down
  under the creator;
* a SIGKILLed worker breaks the pool, and the rebuilt pool's fresh
  processes re-attach the shared memory and still converge.
"""

import pickle

import pytest

from repro.attack.parallel import resilient_recover_keys, shard_image
from repro.attack.sweep import synthetic_dump
from repro.crypto.aes import schedule_bytes
from repro.dram.image import SharedDumpBuffer
from repro.resilience.executor import ResilientShardRunner
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy


class TestSharedDumpBuffer:
    def test_attach_sees_created_bytes(self):
        payload = bytes(range(256)) * 16
        owner = SharedDumpBuffer.create(payload)
        try:
            attached = SharedDumpBuffer.attach(owner.name, owner.length)
            assert bytes(attached.view) == payload
            assert attached.image().block(0) == payload[:64]
            attached.close()
        finally:
            owner.unlink()

    def test_non_owner_unlink_leaves_segment_alive(self):
        owner = SharedDumpBuffer.create(b"\xa5" * 64)
        try:
            attached = SharedDumpBuffer.attach(owner.name, 64)
            attached.unlink()  # non-owners only close
            again = SharedDumpBuffer.attach(owner.name, 64)
            assert bytes(again.view) == b"\xa5" * 64
            again.close()
        finally:
            owner.unlink()


@pytest.mark.parametrize("n_blocks", [2048, 16384])
def test_shard_payload_under_1kib_regardless_of_dump_size(monkeypatch, n_blocks):
    captured = {}
    original_run = ResilientShardRunner.run

    def spy(self, jobs, **kwargs):
        captured.update(jobs)
        return original_run(self, jobs, **kwargs)

    monkeypatch.setattr(ResilientShardRunner, "run", spy)
    dump, _, _ = synthetic_dump(0.0, n_blocks=n_blocks, seed=3)
    resilient_recover_keys(dump, key_bits=256, workers=1, n_shards=4)
    assert captured
    for offset, payload in captured.items():
        wire_size = len(pickle.dumps((payload, offset), protocol=pickle.HIGHEST_PROTOCOL))
        assert wire_size < 1024


def test_pool_rebuild_reattaches_shared_memory():
    """A killed worker breaks the pool; the rebuilt pool still converges.

    The kill lands on the first attempt of shard 0, so the scan must
    survive one BrokenProcessPool, respawn workers (whose initializer
    re-attaches the shared dump and key matrix), retry the shard, and
    recover the planted XTS pair.
    """
    dump, master, _ = synthetic_dump(0.0, seed=5)
    shards = shard_image(dump, n_shards=4, overlap_bytes=schedule_bytes(256) + 64)
    plan = FaultPlan(
        faults=((shards[0].base_offset, FaultSpec(kind="kill", first_attempts=1)),),
        seed=5,
    )
    scan = resilient_recover_keys(
        dump,
        key_bits=256,
        workers=2,
        n_shards=4,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001, seed=5),
        fault_plan=plan,
    )
    assert scan.ledger.pool_rebuilds >= 1
    assert scan.ledger.outcomes[shards[0].base_offset].attempts >= 2
    assert scan.complete
    masters = {r.master_key for r in scan.recovered}
    assert master[:32] in masters and master[32:] in masters
