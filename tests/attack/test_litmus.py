"""Tests for the scrambler-key litmus test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.litmus import (
    INVARIANT_WORD_OFFSETS,
    key_litmus_mismatch_bits,
    litmus_pass_mask,
    passes_key_litmus,
)
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


class TestInvariantDefinitions:
    def test_four_invariants(self):
        assert len(INVARIANT_WORD_OFFSETS) == 4

    def test_paper_notation(self):
        """The first listed invariant is K[i+2:i+3]^K[i+4:i+5] == K[i+10:i+11]^K[i+12:i+13]."""
        assert INVARIANT_WORD_OFFSETS[0] == (2, 4, 10, 12)


class TestPositives:
    def test_all_scrambler_keys_pass(self):
        scrambler = Ddr4Scrambler(boot_seed=999)
        for index in range(0, 4096, 97):
            assert passes_key_litmus(scrambler.key_for(0, index))

    def test_constant_blocks_pass(self):
        """Word-constant plaintext XOR key still passes — the known
        false-positive class the miner's frequency ranking absorbs."""
        assert passes_key_litmus(bytes(64))
        assert passes_key_litmus(b"\xff" * 64)
        assert passes_key_litmus(b"\xab\xcd" * 32)

    def test_key_xor_constant_passes(self):
        key = Ddr4Scrambler(boot_seed=1).key_for(0, 3)
        mixed = bytes(k ^ c for k, c in zip(key, b"\x41\x42" * 32))
        assert passes_key_litmus(mixed)


class TestNegatives:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=2**60))
    def test_random_blocks_fail(self, seed):
        block = SplitMix64(seed).next_bytes(64)
        # 2^-192 false positive rate: effectively never.
        assert not passes_key_litmus(block)

    def test_text_fails(self):
        assert not passes_key_litmus(b"The quick brown fox jumps over the lazy dog, again and"[:64].ljust(64))


class TestDecayTolerance:
    def test_single_flip_within_budget(self):
        key = bytearray(Ddr4Scrambler(boot_seed=7).key_for(0, 11))
        key[2] ^= 0x01  # flip one invariant-covered bit
        assert not passes_key_litmus(bytes(key), tolerance_bits=0)
        assert passes_key_litmus(bytes(key), tolerance_bits=2)

    def test_mismatch_bits_counts_flips(self):
        key = bytearray(Ddr4Scrambler(boot_seed=7).key_for(0, 11))
        clean = key_litmus_mismatch_bits(bytes(key))[0]
        assert clean == 0
        key[0] ^= 0x80
        assert key_litmus_mismatch_bits(bytes(key))[0] > 0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            passes_key_litmus(bytes(64), tolerance_bits=-1)


class TestVectorisedScan:
    def test_mask_matches_scalar(self):
        scrambler = Ddr4Scrambler(boot_seed=31)
        rng = SplitMix64(3)
        blocks = [scrambler.key_for(0, i) for i in range(8)] + [
            rng.next_bytes(64) for _ in range(8)
        ]
        mask = litmus_pass_mask(b"".join(blocks))
        assert mask.tolist() == [True] * 8 + [False] * 8

    def test_accepts_matrix_input(self):
        matrix = np.zeros((4, 64), dtype=np.uint8)
        assert litmus_pass_mask(matrix).all()

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            key_litmus_mismatch_bits(np.zeros((4, 32), dtype=np.uint8))

    def test_wrong_block_length_rejected(self):
        with pytest.raises(ValueError):
            passes_key_litmus(bytes(32))
