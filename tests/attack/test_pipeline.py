"""Tests for the end-to-end attack pipeline plumbing."""

import pytest

from repro.attack.pipeline import AttackConfig, AttackReport, Ddr4ColdBootAttack
from repro.crypto.aes import expand_key
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


def scrambled_dump_with_volume(
    boot_seed: int = 100, n_blocks: int = 3 * 4096, table_block: int = 700, zero_every: int = 3
) -> tuple[MemoryImage, bytes]:
    """A synthetic dump: zeros + noise + a two-schedule XTS key table.

    Key indices cycle every 4096 blocks and gcd(3, 4096) = 1, so with
    three full index periods and a zero block every third block, every
    key index is exposed exactly once — including the table blocks'.
    """
    rng = SplitMix64(boot_seed)
    plain = bytearray(rng.next_bytes(n_blocks * 64))
    for b in range(0, n_blocks, zero_every):
        plain[b * 64 : (b + 1) * 64] = bytes(64)
    master = rng.next_bytes(64)
    table = expand_key(master[:32]) + expand_key(master[32:])
    offset = table_block * 64 + 11
    plain[offset : offset + len(table)] = table
    scrambler = Ddr4Scrambler(boot_seed=boot_seed)
    return MemoryImage(scrambler.scramble_range(0, bytes(plain))), master


class TestPipeline:
    def test_recovers_both_schedules(self):
        dump, master = scrambled_dump_with_volume()
        report = Ddr4ColdBootAttack().run(dump)
        assert len(report.recovered_keys) >= 2
        recovered = {r.master_key for r in report.recovered_keys}
        assert master[:32] in recovered and master[32:] in recovered

    def test_xts_join(self):
        dump, master = scrambled_dump_with_volume(boot_seed=555)
        assert Ddr4ColdBootAttack().recover_xts_master_key(dump) == master

    def test_report_bookkeeping(self):
        dump, _ = scrambled_dump_with_volume(boot_seed=7)
        report = Ddr4ColdBootAttack().run(dump)
        assert report.dump_bytes == len(dump)
        assert report.mine_seconds > 0 and report.search_seconds > 0
        assert report.scan_rate_mb_per_hour > 0
        assert "recovered" in report.summary()

    def test_candidate_cap(self):
        dump, _ = scrambled_dump_with_volume(boot_seed=8)
        config = AttackConfig(max_candidate_keys=10)
        report = Ddr4ColdBootAttack(config).run(dump)
        # The cap only limits the search stage, not mining.
        assert len(report.candidate_keys) > 10

    def test_empty_dump(self):
        report = Ddr4ColdBootAttack().run(MemoryImage(SplitMix64(1).next_bytes(64 * 64)))
        assert report.recovered_keys == []
        assert report.master_keys == []

    def test_xts_returns_none_without_volume(self):
        scrambler = Ddr4Scrambler(boot_seed=9)
        plain = bytearray(SplitMix64(2).next_bytes(512 * 64))
        for b in range(0, 512, 3):
            plain[b * 64 : (b + 1) * 64] = bytes(64)
        dump = MemoryImage(scrambler.scramble_range(0, bytes(plain)))
        assert Ddr4ColdBootAttack().recover_xts_master_key(dump) is None

    def test_fresh_report_defaults(self):
        report = AttackReport()
        assert report.scan_rate_mb_per_hour == float("inf")
