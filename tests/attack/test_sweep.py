"""Tests for the sweep/ablation utilities."""

import pytest

from repro.attack.sweep import SweepPoint, ablate_search, synthetic_dump


class TestSyntheticDump:
    def test_clean_dump_structure(self):
        dump, master, scrambler = synthetic_dump(0.0, n_blocks=512, table_block=100, seed=1)
        assert dump.n_blocks == 512
        assert len(master) == 64
        # The planted table descrambles correctly with the true keys.
        from repro.crypto.aes import expand_key

        block = dump.block(100)
        key = scrambler.key_for_address(100 * 64)
        descrambled = bytes(a ^ b for a, b in zip(block, key))
        assert descrambled[11:] == expand_key(master[:32])[: 64 - 11]

    def test_decay_is_applied(self):
        clean, _, _ = synthetic_dump(0.0, n_blocks=256, table_block=50, seed=2)
        noisy, _, _ = synthetic_dump(0.02, n_blocks=256, table_block=50, seed=2)
        ber = clean.bit_error_rate(noisy)
        assert 0.015 < ber < 0.025

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_dump(0.7)
        with pytest.raises(ValueError):
            synthetic_dump(0.0, n_blocks=64, table_block=60)

    def test_deterministic_per_seed(self):
        a, _, _ = synthetic_dump(0.01, n_blocks=128, table_block=30, seed=3)
        b, _, _ = synthetic_dump(0.01, n_blocks=128, table_block=30, seed=3)
        assert a.data == b.data


class TestAblation:
    def test_clean_case_everyone_wins(self):
        """With no decay every configuration recovers both keys."""
        results = ablate_search(bit_error_rate=0.0)
        assert all(r.master_recovered for r in results)

    def test_result_structure(self):
        results = ablate_search(bit_error_rate=0.0)
        names = {r.configuration for r in results}
        assert names == {"full", "no-extension", "no-repair", "bare"}


class TestSweepPoint:
    def test_dataclass_fields(self):
        point = SweepPoint(
            temperature_c=-25.0,
            transfer_seconds=5.0,
            bit_error_rate=0.004,
            candidates_mined=4000,
            keys_recovered=2,
            master_key_recovered=True,
        )
        assert point.master_key_recovered


class TestFaultRecoverySweep:
    def test_dataclass_fields(self):
        from repro.attack.sweep import FaultSweepPoint

        point = FaultSweepPoint(
            fault_kind="crash",
            shards_quarantined=0,
            keys_recovered=2,
            master_recovered=True,
            matches_clean_run=True,
        )
        assert point.fault_kind == "crash"
        assert point.matches_clean_run
