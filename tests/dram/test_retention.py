"""Tests for the §III-D retention profiles and predictions."""

import pytest

from repro.dram.retention import (
    DUSTER_TEMPERATURE_C,
    MODULE_PROFILES,
    TRANSFER_SECONDS,
    ModuleProfile,
    predicted_retention,
    retention_sweep,
)


def test_seven_modules_as_in_paper():
    generations = [p.generation for p in MODULE_PROFILES.values()]
    assert generations.count("DDR3") == 5
    assert generations.count("DDR4") == 2


def test_cooled_transfer_retains_90_to_99_percent():
    """§III-D: all modules retain 90-99% over a ~5s cooled transfer."""
    for profile in MODULE_PROFILES.values():
        retained = predicted_retention(profile, TRANSFER_SECONDS, DUSTER_TEMPERATURE_C)
        assert 0.90 <= retained <= 0.9999, profile.name


def test_warm_modules_lose_significant_data_in_3s():
    """§III-D: significant loss within 3 seconds at operating temperature."""
    for profile in MODULE_PROFILES.values():
        retained = predicted_retention(profile, 3.0, 20.0)
        assert retained < 0.95, profile.name


def test_one_ddr3_module_leaks_faster_than_ddr4():
    ddr3_worst = min(
        predicted_retention(p, TRANSFER_SECONDS, DUSTER_TEMPERATURE_C)
        for p in MODULE_PROFILES.values()
        if p.generation == "DDR3"
    )
    ddr4_best = min(
        predicted_retention(p, TRANSFER_SECONDS, DUSTER_TEMPERATURE_C)
        for p in MODULE_PROFILES.values()
        if p.generation == "DDR4"
    )
    assert ddr3_worst < ddr4_best


def test_retention_sweep_shape():
    points = retention_sweep(temperatures=(20.0, -25.0), times=(1.0, 5.0))
    assert len(points) == len(MODULE_PROFILES) * 2 * 2
    assert all(0.5 <= p.fraction_retained <= 1.0 for p in points)


def test_retention_monotone_in_temperature():
    profile = MODULE_PROFILES["DDR4_A"]
    warm = predicted_retention(profile, 5.0, 20.0)
    cool = predicted_retention(profile, 5.0, 0.0)
    cold = predicted_retention(profile, 5.0, -50.0)
    assert warm < cool < cold


def test_percent_property():
    points = retention_sweep(temperatures=(-25.0,), times=(5.0,))
    assert points[0].percent_retained == pytest.approx(100 * points[0].fraction_retained)


def test_profile_validates_generation():
    with pytest.raises(ValueError):
        ModuleProfile("X", "DDR5", "v", MODULE_PROFILES["DDR4_A"].decay)
