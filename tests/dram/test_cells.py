"""Tests for the charge-decay physics model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.cells import (
    SPARSE_DECAY_THRESHOLD,
    DecayModel,
    apply_decay,
    ground_state_pattern,
)


class TestDecayModel:
    def setup_method(self):
        self.model = DecayModel(tau_room_s=3.0, beta=1.5, doubling_celsius=9.0)

    def test_cooling_extends_retention(self):
        assert self.model.tau_at(-25.0) > self.model.tau_at(20.0)
        # One doubling step per 9 degrees.
        assert self.model.tau_at(11.0) == pytest.approx(2 * self.model.tau_at(20.0))

    def test_flip_fraction_monotone_in_time(self):
        times = [0.5, 1.0, 3.0, 10.0, 60.0]
        fractions = [self.model.flip_fraction(t, 20.0) for t in times]
        assert fractions == sorted(fractions)
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_zero_time_means_no_decay(self):
        assert self.model.flip_fraction(0.0, 20.0) == 0.0

    def test_conditional_probability_composes(self):
        """Decaying in two steps matches one step in probability mass."""
        a1 = self.model.age_increment(2.0, 20.0)
        a2 = a1 + self.model.age_increment(3.0, 20.0)
        p_two_step = 1 - (1 - self.model.conditional_flip_probability(0, a1)) * (
            1 - self.model.conditional_flip_probability(a1, a2)
        )
        p_one_step = self.model.conditional_flip_probability(0, a2)
        assert p_two_step == pytest.approx(p_one_step)

    def test_conditional_rejects_time_reversal(self):
        with pytest.raises(ValueError):
            self.model.conditional_flip_probability(1.0, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayModel(tau_room_s=0)
        with pytest.raises(ValueError):
            DecayModel(tau_room_s=1, beta=0)
        with pytest.raises(ValueError):
            self.model.age_increment(-1, 20.0)

    @given(
        st.floats(min_value=0.01, max_value=100),
        st.floats(min_value=-60, max_value=60),
    )
    def test_flip_fraction_is_probability(self, seconds, celsius):
        fraction = self.model.flip_fraction(seconds, celsius)
        assert 0.0 <= fraction <= 1.0


class TestGroundState:
    def test_deterministic_per_serial(self):
        a = ground_state_pattern(8192, serial=1)
        b = ground_state_pattern(8192, serial=1)
        assert np.array_equal(a, b)

    def test_varies_with_serial(self):
        a = ground_state_pattern(65536, serial=1)
        b = ground_state_pattern(65536, serial=2)
        assert not np.array_equal(a, b)

    def test_stripes_are_pure(self):
        pattern = ground_state_pattern(16384, serial=3, stripe_bytes=512)
        assert set(np.unique(pattern)) <= {0x00, 0xFF}
        # Each stripe is uniform.
        stripes = pattern.reshape(-1, 512)
        assert all(len(np.unique(s)) == 1 for s in stripes)

    def test_both_polarities_present(self):
        pattern = ground_state_pattern(1 << 16, serial=4)
        assert 0x00 in pattern and 0xFF in pattern

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ground_state_pattern(0, serial=0)


class TestApplyDecay:
    def test_zero_probability_flips_nothing(self):
        data = np.frombuffer(bytes(range(256)) * 4, dtype=np.uint8).copy()
        ground = np.zeros_like(data)
        rng = np.random.Generator(np.random.PCG64(0))
        assert apply_decay(data, ground, 0.0, rng) == 0

    def test_full_probability_reaches_ground(self):
        ground = ground_state_pattern(1024, serial=9)
        data = (~ground).astype(np.uint8)
        rng = np.random.Generator(np.random.PCG64(0))
        flipped = apply_decay(data, ground, 1.0, rng)
        assert np.array_equal(data, ground)
        assert flipped == 8 * 1024

    def test_only_vulnerable_bits_flip(self):
        """Bits already at ground never change."""
        ground = ground_state_pattern(4096, serial=5)
        data = ground.copy()
        rng = np.random.Generator(np.random.PCG64(1))
        assert apply_decay(data, ground, 0.5, rng) == 0
        assert np.array_equal(data, ground)

    def test_flip_count_tracks_probability(self):
        n = 1 << 16
        ground = np.zeros(n, dtype=np.uint8)
        data = np.full(n, 0xFF, dtype=np.uint8)
        rng = np.random.Generator(np.random.PCG64(2))
        flipped = apply_decay(data, ground, 0.01, rng)
        expected = 0.01 * 8 * n
        assert 0.8 * expected < flipped < 1.2 * expected

    def test_rejects_probability_out_of_range(self):
        data = np.zeros(64, dtype=np.uint8)
        rng = np.random.Generator(np.random.PCG64(0))
        with pytest.raises(ValueError):
            apply_decay(data, data.copy(), 1.5, rng)

    def test_rejects_shape_mismatch(self):
        rng = np.random.Generator(np.random.PCG64(0))
        with pytest.raises(ValueError):
            apply_decay(np.zeros(64, dtype=np.uint8), np.zeros(32, dtype=np.uint8), 0.1, rng)


class TestSparseSamplerDistribution:
    """The sparse position sampler must match the dense Bernoulli draw.

    Below ``SPARSE_DECAY_THRESHOLD``, ``apply_decay`` samples flip
    positions by geometric gaps instead of drawing a float per bit; the
    two procedures must be indistinguishable in distribution.
    """

    N_BYTES = 1 << 14
    P = 0.003
    TRIALS = 120

    def _flip_counts(self, probability):
        """(dense counts, sparse counts) over matched per-trial seeds."""
        assert probability < SPARSE_DECAY_THRESHOLD
        ground = ground_state_pattern(self.N_BYTES, serial=3)
        base = np.random.Generator(np.random.PCG64(8)).integers(
            0, 256, self.N_BYTES, dtype=np.uint8
        )
        dense, sparse = [], []
        for trial in range(self.TRIALS):
            rng = np.random.Generator(np.random.PCG64(trial))
            raw = rng.random(self.N_BYTES * 8, dtype=np.float32) < probability
            mask = np.packbits(raw) & (base ^ ground)
            dense.append(int(np.unpackbits(mask).sum()))
            data = base.copy()
            rng = np.random.Generator(np.random.PCG64(trial))
            sparse.append(apply_decay(data, ground, probability, rng))
        return np.array(dense), np.array(sparse)

    def test_flip_count_distributions_agree(self):
        """KS-style check: the empirical CDFs of flip counts must agree."""
        dense, sparse = self._flip_counts(self.P)
        # Compare empirical CDFs at the pooled sample points.
        pooled = np.sort(np.concatenate([dense, sparse]))
        cdf_dense = np.searchsorted(np.sort(dense), pooled, side="right") / len(dense)
        cdf_sparse = np.searchsorted(np.sort(sparse), pooled, side="right") / len(sparse)
        ks_statistic = float(np.max(np.abs(cdf_dense - cdf_sparse)))
        # KS critical value at alpha=0.001 for two samples of size n:
        # c(alpha) * sqrt(2/n) with c(0.001) ~ 1.95.
        critical = 1.95 * np.sqrt(2.0 / self.TRIALS)
        assert ks_statistic < critical, (ks_statistic, critical)
        # Means must agree within sampling error too.
        tolerance = 4.0 * (dense.std() + sparse.std()) / np.sqrt(self.TRIALS)
        assert abs(dense.mean() - sparse.mean()) < tolerance

    def test_sparse_path_flips_only_vulnerable_bits(self):
        ground = ground_state_pattern(self.N_BYTES, serial=4)
        base = np.random.Generator(np.random.PCG64(9)).integers(
            0, 256, self.N_BYTES, dtype=np.uint8
        )
        data = base.copy()
        rng = np.random.Generator(np.random.PCG64(5))
        flipped = apply_decay(data, ground, 0.004, rng)
        changed = data ^ base
        # Every changed bit was vulnerable (differed from ground)...
        assert np.all(changed & ~(base ^ ground) == 0)
        # ...and the reported count matches the actual flips.
        assert int(np.unpackbits(changed).sum()) == flipped

    def test_sparse_and_dense_regimes_are_continuous(self):
        """Flip rates just below and above the threshold line up."""
        ground = np.zeros(self.N_BYTES, dtype=np.uint8)
        rates = []
        for probability in (SPARSE_DECAY_THRESHOLD * 0.9, SPARSE_DECAY_THRESHOLD * 1.1):
            counts = []
            for trial in range(40):
                data = np.full(self.N_BYTES, 0xFF, dtype=np.uint8)
                rng = np.random.Generator(np.random.PCG64(trial + 100))
                counts.append(apply_decay(data, ground, probability, rng))
            rates.append(np.mean(counts) / (8 * self.N_BYTES))
        assert rates[0] == pytest.approx(SPARSE_DECAY_THRESHOLD * 0.9, rel=0.05)
        assert rates[1] == pytest.approx(SPARSE_DECAY_THRESHOLD * 1.1, rel=0.05)

    @pytest.mark.parametrize("probability", [1e-12, 1e-19, 1e-300, 5e-324])
    def test_vanishing_probability_terminates(self, probability):
        """Tiny p saturates the geometric sampler at int64 max; the gap
        walk must still terminate (regression: the saturated gaps'
        cumsum wrapped negative and the walk never advanced)."""
        data = np.full(1 << 12, 0xFF, dtype=np.uint8)
        ground = np.zeros_like(data)
        rng = np.random.Generator(np.random.PCG64(5))
        flipped = apply_decay(data, ground, probability, rng)
        assert flipped <= 1
        assert int(np.unpackbits(data ^ np.uint8(0xFF)).sum()) == flipped
