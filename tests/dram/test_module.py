"""Tests for the removable DIMM model."""

import pytest

from repro.dram.module import DramModule, random_fill
from repro.dram.retention import MODULE_PROFILES


@pytest.fixture
def module() -> DramModule:
    return DramModule(64 * 1024, "DDR4_A", serial=11)


class TestPowerLifecycle:
    def test_fresh_module_sits_at_ground(self, module):
        assert module.raw_read(0, 64) in (bytes(64), b"\xff" * 64)

    def test_double_power_off_rejected(self, module):
        module.power_off()
        with pytest.raises(RuntimeError):
            module.power_off()

    def test_double_power_on_rejected(self, module):
        with pytest.raises(RuntimeError):
            module.power_on()

    def test_no_access_while_unpowered(self, module):
        module.power_off()
        with pytest.raises(RuntimeError):
            module.raw_read(0, 64)
        with pytest.raises(RuntimeError):
            module.raw_write(0, bytes(64))
        with pytest.raises(RuntimeError):
            module.dump()

    def test_powered_module_never_decays(self, module):
        payload = random_fill(module)
        assert module.advance_time(100.0) == 0
        assert module.dump() == payload


class TestDecayBehaviour:
    def test_retention_metric(self, module):
        payload = random_fill(module)
        module.power_off()
        module.set_temperature(-25.0)
        module.advance_time(5.0)
        module.power_on()
        retained = module.fraction_correct(payload)
        assert 0.9 <= retained < 1.0  # the paper's 90-99% band

    def test_warm_decay_is_much_faster(self):
        cold = DramModule(32 * 1024, "DDR4_A", serial=1)
        warm = DramModule(32 * 1024, "DDR4_A", serial=1)
        payload_cold = random_fill(cold)
        payload_warm = random_fill(warm)
        for m, temperature in ((cold, -25.0), (warm, 20.0)):
            m.power_off()
            m.set_temperature(temperature)
            m.advance_time(3.0)
            m.power_on()
        assert warm.fraction_correct(payload_warm) < cold.fraction_correct(payload_cold)

    def test_incremental_decay_is_consistent(self):
        """2s + 3s decays like one 5s interval (statistically)."""
        split = DramModule(64 * 1024, "DDR3_C", serial=7)
        whole = DramModule(64 * 1024, "DDR3_C", serial=7)
        p_split = random_fill(split)
        p_whole = random_fill(whole)
        for m in (split, whole):
            m.power_off()
            m.set_temperature(0.0)
        split.advance_time(2.0)
        split.advance_time(3.0)
        whole.advance_time(5.0)
        split.power_on()
        whole.power_on()
        a = 1 - split.fraction_correct(p_split)
        b = 1 - whole.fraction_correct(p_whole)
        assert a == pytest.approx(b, rel=0.25)

    def test_decay_moves_toward_ground(self, module):
        module.fill(0x00)
        module.power_off()
        module.set_temperature(20.0)
        module.advance_time(60.0)
        module.power_on()
        # After a minute warm, most data is gone toward the ground state.
        data = module.dump()
        ground = module.ground_state.tobytes()
        agreement = sum(a == b for a, b in zip(data[:4096], ground[:4096])) / 4096
        assert agreement > 0.9

    def test_decay_to_ground_helper(self, module):
        random_fill(module)
        module.decay_to_ground()
        assert module.dump() == module.ground_state.tobytes()


class TestAccessValidation:
    def test_out_of_range_read(self, module):
        with pytest.raises(ValueError):
            module.raw_read(module.capacity_bytes - 32, 64)

    def test_out_of_range_write(self, module):
        with pytest.raises(ValueError):
            module.raw_write(module.capacity_bytes, b"x")

    def test_capacity_must_be_block_aligned(self):
        with pytest.raises(ValueError):
            DramModule(100, "DDR4_A")

    def test_profile_by_name_and_object(self):
        by_name = DramModule(4096, "DDR3_C")
        by_object = DramModule(4096, MODULE_PROFILES["DDR3_C"])
        assert by_name.profile == by_object.profile

    def test_fraction_correct_validates_length(self, module):
        with pytest.raises(ValueError):
            module.fraction_correct(b"short")
