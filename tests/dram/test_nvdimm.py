"""Tests for the non-volatile DIMM threat model (§II-C / §V)."""

import pytest

from repro.dram.module import DramModule, random_fill
from repro.dram.nvdimm import NvdimmModule, compare_nvdimm_threat


class TestNvdimmRetention:
    def test_no_decay_warm_for_minutes(self):
        module = NvdimmModule(64 * 1024, serial=5)
        payload = random_fill(module)
        module.power_off()
        module.set_temperature(20.0)
        assert module.advance_time(600.0) == 0
        module.power_on()
        assert module.fraction_correct(payload) == 1.0

    def test_drop_in_replacement_for_dram(self):
        """An NVDIMM slots anywhere a DramModule does."""
        from repro.controller.controller import MemoryController
        from repro.dram.address import address_map_for
        from repro.scrambler.ddr4 import Ddr4Scrambler

        amap = address_map_for("skylake")
        module = NvdimmModule(1 << 18, serial=1)
        mc = MemoryController(amap, {0: module}, Ddr4Scrambler(boot_seed=1, address_map=amap))
        mc.write(4096, b"persistent secrets" * 3)
        assert mc.read(4096, 54) == b"persistent secrets" * 3

    def test_rejects_negative_time(self):
        module = NvdimmModule(4096)
        module.power_off()
        with pytest.raises(ValueError):
            module.advance_time(-1.0)


class TestThreatComparison:
    def test_nvdimm_needs_no_cooling(self):
        comparison = compare_nvdimm_threat()
        assert comparison.nvdimm_retention_at_20c_60s == 1.0
        assert comparison.dram_retention_at_20c_60s < 0.9
        dram_needs, nvdimm_needs = comparison.needs_cooling
        assert dram_needs and not nvdimm_needs


class TestNvdimmColdBoot:
    def test_warm_slow_attack_succeeds_on_nvdimm(self):
        """§V's warning, end to end: no duster, a full minute of transfer,
        and the scrambled NVDIMM still gives up its secrets."""
        from repro.attack.coldboot import TransferConditions, cold_boot_transfer
        from repro.attack.pipeline import Ddr4ColdBootAttack
        from repro.victim.machine import TABLE_I_MACHINES, Machine
        from repro.victim.workload import synthesize_memory

        mem = 2 << 20
        victim = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=mem, machine_id=61)
        # Swap the DRAM for NVDIMMs before use.
        victim.shutdown()
        victim.remove_module(0)
        victim.install_module(NvdimmModule(mem, serial=99), 0)
        victim.boot()
        contents, _ = synthesize_memory(mem - 64 * 1024, zero_fraction=0.35, seed=61)
        victim.write(64 * 1024, contents)
        volume = victim.mount_encrypted_volume(b"pw", key_table_address=(1 << 20) + 13)

        attacker = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=mem, machine_id=62)
        dump = cold_boot_transfer(
            victim,
            attacker,
            TransferConditions(temperature_c=20.0, transfer_seconds=60.0),  # warm & slow!
        )
        master = Ddr4ColdBootAttack().recover_xts_master_key(dump)
        assert master == volume.master_key
