"""Tests for the warming-transfer thermal model."""

import pytest

from repro.dram.module import DramModule, random_fill
from repro.dram.retention import MODULE_PROFILES
from repro.dram.thermal import ThermalTransfer


class TestTrajectory:
    def test_starts_cold_ends_ambient(self):
        transfer = ThermalTransfer(start_celsius=-25.0, ambient_celsius=20.0)
        assert transfer.temperature_at(0.0) == pytest.approx(-25.0)
        assert transfer.temperature_at(1e6) == pytest.approx(20.0, abs=0.01)

    def test_monotone_warming(self):
        transfer = ThermalTransfer()
        temps = [transfer.temperature_at(t) for t in (0, 30, 90, 300)]
        assert temps == sorted(temps)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalTransfer(thermal_tau_s=0)
        with pytest.raises(ValueError):
            ThermalTransfer().temperature_at(-1)


class TestAppliedDecay:
    def test_warming_transfer_worse_than_constant_cold(self):
        cold = DramModule(64 * 1024, "DDR4_A", serial=1)
        warming = DramModule(64 * 1024, "DDR4_A", serial=1)
        p_cold = random_fill(cold)
        p_warm = random_fill(warming)
        for module in (cold, warming):
            module.power_off()
        cold.set_temperature(-25.0)
        cold.advance_time(120.0)
        ThermalTransfer(start_celsius=-25.0).apply(warming, 120.0)
        assert warming.fraction_correct(p_warm) < cold.fraction_correct(p_cold)

    def test_short_transfer_barely_differs(self):
        """Over 5 s the module barely warms; §III-D's constant-cold
        numbers are a good approximation of the trajectory."""
        profile = MODULE_PROFILES["DDR4_A"]
        transfer = ThermalTransfer(start_celsius=-25.0)
        from repro.dram.retention import predicted_retention

        constant = predicted_retention(profile, 5.0, -25.0)
        warming = transfer.predicted_retention(profile, 5.0)
        assert warming == pytest.approx(constant, abs=0.002)

    def test_apply_validation(self):
        module = DramModule(4096, "DDR4_A")
        module.power_off()
        transfer = ThermalTransfer()
        with pytest.raises(ValueError):
            transfer.apply(module, 5.0, steps=0)
        with pytest.raises(ValueError):
            transfer.apply(module, -1.0)


class TestPlanning:
    def test_max_transfer_monotone_in_floor(self):
        transfer = ThermalTransfer(start_celsius=-25.0)
        profile = MODULE_PROFILES["DDR4_A"]
        strict = transfer.max_transfer_seconds(profile, retention_floor=0.99)
        loose = transfer.max_transfer_seconds(profile, retention_floor=0.90)
        assert strict < loose

    def test_colder_start_buys_time(self):
        profile = MODULE_PROFILES["DDR3_C"]
        duster = ThermalTransfer(start_celsius=-25.0)
        ln2 = ThermalTransfer(start_celsius=-50.0)
        assert ln2.max_transfer_seconds(profile, 0.95) > duster.max_transfer_seconds(
            profile, 0.95
        )

    def test_floor_validated(self):
        with pytest.raises(ValueError):
            ThermalTransfer().max_transfer_seconds(MODULE_PROFILES["DDR4_A"], 0.3)
