"""Tests for physical address decomposition and key-index selection."""

import pytest

from repro.dram.address import (
    GENERATION_ADDRESS_MAPS,
    DramAddressMap,
    address_map_for,
)


class TestKeyIndexSelection:
    def test_skylake_selects_4096_keys(self):
        assert address_map_for("skylake").keys_per_channel == 4096

    def test_sandybridge_selects_16_keys(self):
        assert address_map_for("sandybridge").keys_per_channel == 16

    def test_key_index_block_granular(self):
        amap = address_map_for("skylake")
        # All addresses within a block share an index.
        base = 0x12340
        base -= base % 64
        indices = {amap.key_index_of(base + o) for o in range(64)}
        assert len(indices) == 1

    def test_key_index_cycles(self):
        amap = address_map_for("skylake")
        assert amap.key_index_of(0) == amap.key_index_of(4096 * 64)

    def test_generations_use_different_bits(self):
        sandy = address_map_for("sandybridge")
        ivy = address_map_for("ivybridge")
        differing = [
            block * 64
            for block in range(64)
            if sandy.key_index_of(block * 64) != ivy.key_index_of(block * 64)
        ]
        assert differing, "generations should map addresses differently"


class TestChannelRouting:
    def test_single_channel_is_zero(self):
        amap = address_map_for("skylake")
        assert amap.channel_of(0x123456) == 0

    def test_dual_channel_interleaves_on_bit6(self):
        amap = address_map_for("skylake", channels=2)
        assert amap.channel_of(0) == 0
        assert amap.channel_of(64) == 1
        assert amap.channel_of(128) == 0

    def test_channel_local_packs_densely(self):
        amap = address_map_for("skylake", channels=2)
        # Blocks 0, 2, 4... (channel 0) pack to consecutive local blocks.
        locals_ = [amap.channel_local_address(block * 64) for block in (0, 2, 4)]
        assert locals_ == [0, 64, 128]

    def test_single_channel_local_is_identity(self):
        amap = address_map_for("skylake")
        assert amap.channel_local_address(0xABCDE0) == 0xABCDE0


class TestDecomposition:
    def test_coordinates_in_range(self):
        amap = address_map_for("skylake")
        for address in (0, 64 * 1000, 64 * 123456):
            coords = amap.decompose(address)
            assert 0 <= coords.bank < amap.banks
            assert 0 <= coords.column < amap.column_bits_span
            assert coords.channel == 0

    def test_block_arithmetic(self):
        amap = address_map_for("skylake")
        assert amap.block_index(130) == 2
        assert amap.block_offset(130) == 2


class TestValidation:
    def test_key_bits_below_block_rejected(self):
        with pytest.raises(ValueError):
            DramAddressMap(name="bad", key_index_bits=(3, 7))

    def test_insufficient_channel_bits_rejected(self):
        with pytest.raises(ValueError):
            DramAddressMap(name="bad", channels=4, channel_bits=(6,))

    def test_unknown_generation_raises(self):
        with pytest.raises(KeyError):
            address_map_for("nehalem")

    def test_registry_contents(self):
        assert {"sandybridge", "ivybridge", "skylake"} <= {
            m.name.split("-")[0] for m in GENERATION_ADDRESS_MAPS.values()
        }
