"""Tests for memory image containers."""

import pytest

from repro.dram.image import MemoryImage


def test_block_access():
    image = MemoryImage(bytes(range(64)) + b"\xaa" * 64)
    assert image.n_blocks == 2
    assert image.block(0) == bytes(range(64))
    assert image.block(1) == b"\xaa" * 64


def test_block_address():
    image = MemoryImage(bytes(128), base_address=0x1000)
    assert image.block_address(1) == 0x1040


def test_block_out_of_range():
    image = MemoryImage(bytes(64))
    with pytest.raises(IndexError):
        image.block(1)


def test_alignment_validation():
    with pytest.raises(ValueError):
        MemoryImage(bytes(65))
    with pytest.raises(ValueError):
        MemoryImage(bytes(64), base_address=32)


def test_xor_identity_and_mismatch():
    a = MemoryImage(bytes([0xF0]) * 64)
    b = MemoryImage(bytes([0x0F]) * 64)
    assert a.xor(b).data == bytes([0xFF]) * 64
    with pytest.raises(ValueError):
        a.xor(MemoryImage(bytes(128)))


def test_bit_error_rate():
    a = MemoryImage(bytes(64))
    b = MemoryImage(b"\x01" + bytes(63))
    assert a.bit_error_rate(b) == pytest.approx(1 / 512)
    assert a.bit_error_rate(a) == 0.0


def test_blocks_matrix_view():
    image = MemoryImage(bytes(range(64)) * 2)
    matrix = image.blocks_matrix()
    assert matrix.shape == (2, 64)


def test_save_and_load_roundtrip(tmp_path):
    image = MemoryImage(bytes(range(128)) + bytes(64))
    path = tmp_path / "dump.bin"
    image.save(path)
    loaded = MemoryImage.load(path, base_address=0x40)
    assert loaded.data == image.data
    assert loaded.base_address == 0x40


class TestLoadTolerant:
    def test_truncated_trailing_block_is_clipped(self, tmp_path):
        from repro.dram.image import MemoryImage

        path = tmp_path / "torn.bin"
        path.write_bytes(bytes(64) + b"\xaa" * 64 + b"\x01\x02\x03")  # torn tail
        image = MemoryImage.load_tolerant(path)
        assert image.n_blocks == 2
        assert image.data[-64:] == b"\xaa" * 64

    def test_missing_file(self, tmp_path):
        from repro.dram.image import MemoryImage
        from repro.resilience.errors import DumpFormatError

        with pytest.raises(DumpFormatError, match="not found"):
            MemoryImage.load_tolerant(tmp_path / "nope.bin")

    def test_directory(self, tmp_path):
        from repro.dram.image import MemoryImage
        from repro.resilience.errors import DumpFormatError

        with pytest.raises(DumpFormatError, match="directory"):
            MemoryImage.load_tolerant(tmp_path)

    def test_sub_block_file(self, tmp_path):
        from repro.dram.image import MemoryImage
        from repro.resilience.errors import DumpFormatError

        path = tmp_path / "tiny.bin"
        path.write_bytes(b"just a few bytes")
        with pytest.raises(DumpFormatError, match="not even one"):
            MemoryImage.load_tolerant(path)

    def test_format_error_is_still_a_value_error(self, tmp_path):
        from repro.dram.image import MemoryImage

        with pytest.raises(ValueError):
            MemoryImage.load_tolerant(tmp_path / "nope.bin")
