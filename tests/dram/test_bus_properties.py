"""Property tests: the channel scheduler never violates its constraints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import address_map_for
from repro.dram.bus import DdrChannelSimulator, ReadRequest
from repro.dram.timing import DDR4_2400

request_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    st.integers(min_value=0, max_value=(1 << 24) // 64 - 1),
).map(lambda t: ReadRequest(arrival_ns=t[0], physical_address=t[1] * 64))


@settings(max_examples=40, deadline=None)
@given(requests=st.lists(request_strategy, min_size=1, max_size=40))
def test_scheduler_invariants(requests):
    simulator = DdrChannelSimulator(address_map_for("skylake"))
    completed = simulator.schedule(requests)
    timing = simulator.timing
    assert len(completed) == len(requests)

    # Per-request causality and the CL relation.
    for read in completed:
        assert read.cas_issue_ns >= read.request.arrival_ns - 1e-9
        assert read.data_start_ns - read.cas_issue_ns >= timing.cas_latency_ns - 1e-9
        assert read.data_end_ns - read.data_start_ns >= DDR4_2400.burst_time_ns - 1e-9

    # Data bus never double-booked.
    ordered = sorted(completed, key=lambda c: c.data_start_ns)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.data_start_ns >= earlier.data_end_ns - 1e-9

    # Column commands respect tCCD.
    cas_times = sorted(c.cas_issue_ns for c in completed)
    for a, b in zip(cas_times, cas_times[1:]):
        assert b - a >= timing.tccd_ns - 1e-9

    # Row-buffer semantics: a hit requires the previous access to the
    # same bank to have opened that row.
    last_row: dict[int, int] = {}
    for read in sorted(completed, key=lambda c: c.cas_issue_ns):
        if read.row_hit:
            assert last_row.get(read.bank) == read.row
        last_row[read.bank] = read.row


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    gap=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)
def test_same_row_streaming_all_hits(n, gap):
    """Consecutive blocks of one row: everything after the opener hits."""
    simulator = DdrChannelSimulator(address_map_for("skylake"))
    n = min(n, simulator.address_map.column_bits_span)
    completed = simulator.schedule(
        [ReadRequest(i * gap, i * 64) for i in range(n)]
    )
    assert [c.row_hit for c in completed] == [False] + [True] * (n - 1)
