"""Tests for DDR4 timing parameters."""

import pytest

from repro.dram.timing import (
    DDR4_2400,
    JEDEC_CAS_LATENCIES_NS,
    MAX_CAS_LATENCY_NS,
    MAX_OUTSTANDING_CAS_DDR4_2400,
    MIN_CAS_LATENCY_NS,
    DdrBusTiming,
    DramTiming,
)


def test_nine_allowed_cas_latencies():
    """JESD79-4 defines nine standard CAS latencies, all in [12.5, 15.01]."""
    assert len(JEDEC_CAS_LATENCIES_NS) == 9
    assert MIN_CAS_LATENCY_NS == 12.5
    assert MAX_CAS_LATENCY_NS == 15.01
    assert all(12.5 <= cl <= 15.01 for cl in JEDEC_CAS_LATENCIES_NS)


def test_ddr4_2400_bus_parameters():
    assert DDR4_2400.transfer_rate_mts == 2400
    assert DDR4_2400.burst_bytes == 64
    assert DDR4_2400.burst_time_ns == pytest.approx(8 / 2.4)
    assert DDR4_2400.peak_bandwidth_gbs == pytest.approx(19.2)


def test_max_back_to_back_cas_is_18():
    """The paper's 'up to 18 back-to-back CAS requests' on DDR4-2400."""
    assert DDR4_2400.max_back_to_back_cas() == 18
    assert MAX_OUTSTANDING_CAS_DDR4_2400 == 18


def test_slower_bus_fits_fewer_bursts():
    ddr4_1600 = DdrBusTiming("DDR4-1600", io_clock_ghz=0.8)
    assert ddr4_1600.max_back_to_back_cas() < DDR4_2400.max_back_to_back_cas()


def test_read_latency_row_hit_vs_miss():
    timing = DramTiming(bus=DDR4_2400, cas_latency_ns=12.5, trcd_ns=13.32)
    assert timing.read_latency_ns(row_buffer_hit=True) == 12.5
    assert timing.read_latency_ns(row_buffer_hit=False) == pytest.approx(25.82)


def test_invalid_cas_rejected():
    with pytest.raises(ValueError):
        DramTiming(bus=DDR4_2400, cas_latency_ns=0)
