"""Tests for the command-level DDR4 channel simulator."""

import pytest

from repro.dram.address import address_map_for
from repro.dram.bus import (
    DdrChannelSimulator,
    DdrTimingParameters,
    ReadRequest,
)
from repro.dram.timing import DDR4_2400


def make_simulator(**kwargs) -> DdrChannelSimulator:
    return DdrChannelSimulator(address_map_for("skylake"), DDR4_2400, **kwargs)


class TestSingleRead:
    def test_cold_read_pays_trcd_plus_cl(self):
        sim = make_simulator()
        [done] = sim.schedule([ReadRequest(0.0, 0)])
        timing = sim.timing
        assert not done.row_hit
        assert done.data_start_ns == pytest.approx(timing.trcd_ns + timing.cas_latency_ns)
        assert done.data_end_ns == pytest.approx(done.data_start_ns + DDR4_2400.burst_time_ns)

    def test_row_hit_pays_only_cl(self):
        sim = make_simulator()
        first, second = sim.schedule(
            [ReadRequest(0.0, 0), ReadRequest(100.0, 64)]  # same row
        )
        assert second.row_hit
        assert second.data_start_ns == pytest.approx(100.0 + sim.timing.cas_latency_ns)

    def test_latency_accounts_arrival(self):
        sim = make_simulator()
        [done] = sim.schedule([ReadRequest(50.0, 0)])
        assert done.latency_ns == pytest.approx(
            sim.timing.trcd_ns + sim.timing.cas_latency_ns + DDR4_2400.burst_time_ns
        )


class TestRowBufferPolicy:
    def test_same_row_hits(self):
        sim = make_simulator()
        reads = sim.schedule(
            [ReadRequest(i * 100.0, i * 64) for i in range(8)]  # one row
        )
        assert [r.row_hit for r in reads] == [False] + [True] * 7
        assert sim.row_hit_rate == pytest.approx(7 / 8)

    def test_row_conflict_pays_precharge(self):
        sim = make_simulator()
        amap = sim.address_map
        row_bytes = amap.column_bits_span * 64
        same_bank_next_row = row_bytes * amap.banks  # same bank, next row
        first, conflict = sim.schedule(
            [ReadRequest(0.0, 0), ReadRequest(500.0, same_bank_next_row)]
        )
        assert first.bank == conflict.bank
        assert first.row != conflict.row
        assert not conflict.row_hit
        # Row was open: the conflicting access pays tRP + tRCD + CL.
        expected = 500.0 + sim.timing.trp_ns + sim.timing.trcd_ns + sim.timing.cas_latency_ns
        assert conflict.data_start_ns >= expected - 1e-9

    def test_bank_parallelism(self):
        """Activates to different banks overlap (tRRD, not tRC, applies)."""
        sim = make_simulator()
        amap = sim.address_map
        row_bytes = amap.column_bits_span * 64
        reads = sim.schedule(
            [ReadRequest(0.0, 0), ReadRequest(0.0, row_bytes)]  # banks 0 and 1
        )
        assert reads[0].bank != reads[1].bank
        # The second read's data follows the first by one burst slot, far
        # sooner than a serialised same-bank tRC would allow.
        assert reads[1].data_start_ns - reads[0].data_start_ns == pytest.approx(
            DDR4_2400.burst_time_ns
        )


class TestBusContention:
    def test_data_bus_serialises_bursts(self):
        sim = make_simulator()
        reads = sim.schedule([ReadRequest(0.0, i * 64) for i in range(18)])
        starts = [r.data_start_ns for r in reads]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(gap >= DDR4_2400.burst_time_ns - 1e-9 for gap in gaps)

    def test_utilisation_saturates_under_backlog(self):
        sim = make_simulator()
        sim.schedule([ReadRequest(0.0, i * 64) for i in range(64)])
        assert sim.bus_utilisation > 0.8

    def test_idle_traffic_low_utilisation(self):
        sim = make_simulator()
        sim.schedule([ReadRequest(i * 1000.0, i * 64) for i in range(16)])
        assert sim.bus_utilisation < 0.1


class TestValidation:
    def test_timing_validation(self):
        with pytest.raises(ValueError):
            DdrTimingParameters(cas_latency_ns=0)
        with pytest.raises(ValueError):
            DdrTimingParameters(tras_ns=50.0, trc_ns=40.0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            ReadRequest(-1.0, 0)

    def test_reset_clears_state(self):
        sim = make_simulator()
        sim.schedule([ReadRequest(0.0, 0)])
        sim.reset()
        assert sim.completed == []
        assert sim.row_hit_rate == 0.0
