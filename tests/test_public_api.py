"""Public API surface integrity: every export exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.crypto",
    "repro.dram",
    "repro.scrambler",
    "repro.controller",
    "repro.victim",
    "repro.attack",
    "repro.resilience",
    "repro.engine",
    "repro.analysis",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    missing = [name for name in module.__all__ if not hasattr(module, name)]
    assert not missing, f"{package}.__all__ names missing attributes: {missing}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_and_unique(package):
    module = importlib.import_module(package)
    exports = list(module.__all__)
    assert len(exports) == len(set(exports)), f"duplicates in {package}.__all__"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_items_documented(package):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        item = getattr(module, name)
        if callable(item) and not isinstance(item, (int, float, str, bytes, tuple, dict)):
            if not (getattr(item, "__doc__", None) or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package}: undocumented exports {undocumented}"
