"""Tests for the scrambler reverse-engineering framework (§III-A/B)."""

import pytest

from repro.dram.image import MemoryImage
from repro.scrambler.analysis import (
    analyze_scrambler,
    census,
    infer_key_index_bits,
    seed_mixing_analysis,
)
from repro.scrambler.ddr3 import Ddr3Scrambler
from repro.scrambler.ddr4 import Ddr4Scrambler


def keystream_of(scrambler, n_blocks: int) -> MemoryImage:
    """What a reverse cold boot yields: scramble(zeros) over the range."""
    return MemoryImage(scrambler.scramble_range(0, bytes(n_blocks * 64)))


class TestCensus:
    def test_ddr3_counts_16(self):
        stats = census(keystream_of(Ddr3Scrambler(boot_seed=1), 1024))
        assert stats.n_distinct_keys == 16
        assert stats.pool_is_power_of_two
        assert stats.max_reuse == 64

    def test_ddr4_counts_4096(self):
        stats = census(keystream_of(Ddr4Scrambler(boot_seed=1), 8192))
        assert stats.n_distinct_keys == 4096
        assert stats.min_reuse == 2


class TestIndexBitInference:
    def test_ddr3_bits(self):
        scrambler = Ddr3Scrambler(boot_seed=2)  # index bits 6..9
        bits = infer_key_index_bits(keystream_of(scrambler, 256))
        assert bits == (6, 7, 8, 9)

    def test_ddr4_bits(self):
        scrambler = Ddr4Scrambler(boot_seed=2)  # index bits 6..17
        bits = infer_key_index_bits(keystream_of(scrambler, 2 * 4096))
        assert bits == tuple(range(6, 18))

    def test_ivybridge_shifted_bits(self):
        scrambler = Ddr3Scrambler(boot_seed=2, cpu_generation="ivybridge")  # 7..10
        bits = infer_key_index_bits(keystream_of(scrambler, 512))
        assert bits == (7, 8, 9, 10)

    def test_requires_two_blocks(self):
        with pytest.raises(ValueError):
            infer_key_index_bits(MemoryImage(bytes(64)))


class TestSeedMixing:
    def test_ddr3_is_separable(self):
        a = keystream_of(Ddr3Scrambler(boot_seed=1), 512)
        b = keystream_of(Ddr3Scrambler(boot_seed=2), 512)
        assert seed_mixing_analysis(a, b).separable

    def test_ddr4_is_not(self):
        a = keystream_of(Ddr4Scrambler(boot_seed=1), 512)
        b = keystream_of(Ddr4Scrambler(boot_seed=2), 512)
        report = seed_mixing_analysis(a, b)
        assert not report.separable
        assert report.distinct_cross_boot_xors > 500


class TestFullCharacterisation:
    def test_classifies_ddr3(self):
        a = keystream_of(Ddr3Scrambler(boot_seed=1), 512)
        b = keystream_of(Ddr3Scrambler(boot_seed=2), 512)
        report = analyze_scrambler(a, b)
        assert report.keys_per_channel == 16
        assert report.separable_seed_mixing
        assert not report.keys_reused_across_reboot
        assert "DDR3-class" in report.generation_verdict()

    def test_classifies_ddr4(self):
        a = keystream_of(Ddr4Scrambler(boot_seed=1), 2 * 4096)
        b = keystream_of(Ddr4Scrambler(boot_seed=2), 2 * 4096)
        report = analyze_scrambler(a, b)
        assert report.keys_per_channel == 4096
        assert report.key_index_bits == tuple(range(6, 18))
        assert not report.separable_seed_mixing
        assert "DDR4/Skylake-class" in report.generation_verdict()

    def test_detects_sticky_seed(self):
        """The 'certain vendors' case: identical keystreams across boots."""
        a = keystream_of(Ddr4Scrambler(boot_seed=5), 512)
        b = keystream_of(Ddr4Scrambler(boot_seed=5), 512)
        report = analyze_scrambler(a, b)
        assert report.keys_reused_across_reboot
