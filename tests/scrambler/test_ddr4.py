"""Tests for the Skylake DDR4 scrambler: every §III-B observation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.litmus import passes_key_litmus
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.bits import bytes_to_words16, xor_bytes


class TestKeyPool:
    def test_4096_distinct_keys_per_channel(self):
        scrambler = Ddr4Scrambler(boot_seed=42)
        keys = scrambler.all_keys()
        assert len(keys) == 4096
        assert len(set(keys)) == 4096

    def test_256x_reduction_vs_ddr3(self):
        assert 4096 // 16 == 256  # the paper's correlation-reduction factor

    def test_key_sharing_is_seed_independent(self):
        """Blocks sharing a key keep sharing one after reboot (§III-B)."""
        a = Ddr4Scrambler(boot_seed=1)
        b = Ddr4Scrambler(boot_seed=2)
        addr1, addr2 = 0x0, 4096 * 64  # same key index in both boots
        assert a.key_for_address(addr1) == a.key_for_address(addr2)
        assert b.key_for_address(addr1) == b.key_for_address(addr2)

    def test_seed_reset_changes_keys(self):
        scrambler = Ddr4Scrambler(boot_seed=1)
        before = scrambler.key_for(0, 7)
        scrambler.reseed(2)
        assert scrambler.key_for(0, 7) != before


class TestInvariants:
    """The litmus-test invariants hold for every generated key."""

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**63), st.integers(min_value=0, max_value=4095))
    def test_every_key_passes_litmus(self, seed, index):
        scrambler = Ddr4Scrambler(boot_seed=seed)
        assert passes_key_litmus(scrambler.key_for(0, index))

    def test_invariants_word_structure(self):
        """Second 8 bytes of each 16-byte sub-word = first 8 ^ constant."""
        key = Ddr4Scrambler(boot_seed=5).key_for(0, 100)
        for base in range(0, 64, 16):
            words = bytes_to_words16(key[base : base + 16])
            deltas = {words[4 + j] ^ words[j] for j in range(4)}
            assert len(deltas) == 1

    def test_xor_of_two_keys_still_passes_litmus(self):
        """Linearity: dumps taken through a second scrambler still mine."""
        a = Ddr4Scrambler(boot_seed=1)
        b = Ddr4Scrambler(boot_seed=2)
        for index in (0, 17, 4095):
            combined = xor_bytes(a.key_for(0, index), b.key_for(0, index))
            assert passes_key_litmus(combined)


class TestNoUniversalKey:
    def test_cross_boot_xor_does_not_collapse(self):
        """Unlike DDR3, reboot XOR yields thousands of distinct values."""
        a = Ddr4Scrambler(boot_seed=111)
        b = Ddr4Scrambler(boot_seed=222)
        xors = {xor_bytes(a.key_for(0, i), b.key_for(0, i)) for i in range(512)}
        assert len(xors) > 500


class TestDataPath:
    def test_self_inverse(self):
        scrambler = Ddr4Scrambler(boot_seed=3)
        block = b"\x5a" * 64
        address = 128 * 64
        assert scrambler.descramble_block(address, scrambler.scramble_block(address, block)) == block

    def test_range_scramble_matches_blockwise(self):
        scrambler = Ddr4Scrambler(boot_seed=3)
        data = bytes(range(256))
        by_range = scrambler.scramble_range(0, data)
        by_block = b"".join(
            scrambler.scramble_block(i * 64, data[i * 64 : (i + 1) * 64]) for i in range(4)
        )
        assert by_range == by_block

    def test_alignment_enforced(self):
        scrambler = Ddr4Scrambler(boot_seed=3)
        with pytest.raises(ValueError):
            scrambler.scramble_block(7, bytes(64))
        with pytest.raises(ValueError):
            scrambler.scramble_block(0, bytes(63))

    def test_channels_have_distinct_pools(self):
        scrambler = Ddr4Scrambler(boot_seed=3, cpu_generation="skylake", channels=2)
        assert scrambler.key_for(0, 9) != scrambler.key_for(1, 9)

    def test_requires_4096_key_map(self):
        from repro.dram.address import address_map_for

        with pytest.raises(ValueError):
            Ddr4Scrambler(boot_seed=1, address_map=address_map_for("sandybridge"))
