"""Tests for the LFSR pseudo-random number generators."""

import pytest

from repro.scrambler.lfsr import MAXIMAL_TAPS, FibonacciLfsr, GaloisLfsr, lfsr_period


class TestGaloisLfsr:
    def test_deterministic(self):
        a = GaloisLfsr(16, seed=0xACE1)
        b = GaloisLfsr(16, seed=0xACE1)
        assert [a.step() for _ in range(100)] == [b.step() for _ in range(100)]

    def test_zero_seed_coerced(self):
        reg = GaloisLfsr(16, seed=0)
        assert reg.state != 0

    @pytest.mark.parametrize("width", [8, 16])
    def test_maximal_period(self, width):
        """The default taps give the full 2^w - 1 period."""
        assert lfsr_period(width) == (1 << width) - 1

    def test_non_maximal_taps_detected(self):
        # x^8 + x^4 (taps 0x88) is not primitive; period divides but is short.
        assert lfsr_period(8, taps=0x88) < 255

    def test_next_bits_packs_lsb_first(self):
        reg = GaloisLfsr(16, seed=0xACE1)
        bits = [GaloisLfsr(16, seed=0xACE1).step()]
        assert reg.next_bits(1) == bits[0]

    def test_next_bytes_length(self):
        assert len(GaloisLfsr(64, seed=5).next_bytes(64)) == 64

    def test_word16(self):
        reg = GaloisLfsr(64, seed=7)
        clone = GaloisLfsr(64, seed=7)
        assert reg.next_word16() == clone.next_bits(16)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            GaloisLfsr(1, seed=1)

    def test_requires_taps_for_odd_width(self):
        with pytest.raises(ValueError):
            GaloisLfsr(13, seed=1)
        GaloisLfsr(13, seed=1, taps=0x1C80)  # explicit taps accepted


class TestFibonacciLfsr:
    def test_maximal_16bit(self):
        # Taps (16, 14, 13, 11) are the classic maximal 16-bit set.
        reg = FibonacciLfsr(16, seed=0xACE1, tap_positions=(16, 14, 13, 11))
        start = reg.state
        count = 0
        while count < (1 << 16):
            reg.step()
            count += 1
            if reg.state == start:
                break
        assert count == (1 << 16) - 1

    def test_rejects_bad_taps(self):
        with pytest.raises(ValueError):
            FibonacciLfsr(16, seed=1, tap_positions=())
        with pytest.raises(ValueError):
            FibonacciLfsr(16, seed=1, tap_positions=(17,))

    def test_zero_seed_coerced(self):
        assert FibonacciLfsr(8, seed=0, tap_positions=(8, 6, 5, 4)).state != 0


def test_default_taps_cover_common_widths():
    assert {8, 16, 24, 32, 64} <= set(MAXIMAL_TAPS)
