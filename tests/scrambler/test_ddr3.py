"""Tests for the DDR3 scrambler model: 16 keys, universal-key factoring."""

import pytest

from repro.scrambler.ddr3 import Ddr3Scrambler
from repro.util.bits import xor_bytes


class TestKeyPool:
    def test_sixteen_distinct_keys_per_channel(self):
        scrambler = Ddr3Scrambler(boot_seed=42)
        keys = scrambler.all_keys()
        assert len(keys) == 16
        assert len(set(keys)) == 16

    def test_keys_are_64_bytes(self):
        assert all(len(k) == 64 for k in Ddr3Scrambler(1).all_keys())

    def test_key_reuse_across_memory(self):
        """Blocks 4096 bytes apart share keys (4 key-index bits at 6..9)."""
        scrambler = Ddr3Scrambler(boot_seed=42)
        assert scrambler.key_for_address(0) == scrambler.key_for_address(1024)

    def test_seed_changes_every_key(self):
        a = Ddr3Scrambler(boot_seed=1).all_keys()
        b = Ddr3Scrambler(boot_seed=2).all_keys()
        assert all(x != y for x, y in zip(a, b))


class TestUniversalKeyProperty:
    """The fatal DDR3 flaw: separable seed mixing (§II-C)."""

    def test_cross_boot_xor_collapses_to_one_key(self):
        a = Ddr3Scrambler(boot_seed=111)
        b = Ddr3Scrambler(boot_seed=222)
        xors = {xor_bytes(a.key_for(0, i), b.key_for(0, i)) for i in range(16)}
        assert len(xors) == 1

    def test_universal_key_helper_agrees(self):
        a = Ddr3Scrambler(boot_seed=111)
        b = Ddr3Scrambler(boot_seed=222)
        universal = a.universal_key_against(222)
        assert universal == xor_bytes(a.key_for(0, 5), b.key_for(0, 5))

    def test_reseed_behaves_like_reboot(self):
        scrambler = Ddr3Scrambler(boot_seed=111)
        before = scrambler.all_keys()
        scrambler.reseed(333)
        after = scrambler.all_keys()
        xors = {xor_bytes(x, y) for x, y in zip(before, after)}
        assert len(xors) == 1


class TestDataPath:
    def test_scramble_is_self_inverse(self):
        scrambler = Ddr3Scrambler(boot_seed=9)
        block = bytes(range(64))
        assert scrambler.descramble_block(0, scrambler.scramble_block(0, block)) == block

    def test_zero_block_reveals_key(self):
        scrambler = Ddr3Scrambler(boot_seed=9)
        assert scrambler.scramble_block(0, bytes(64)) == scrambler.key_for_address(0)

    def test_requires_right_key_count(self):
        from repro.dram.address import address_map_for

        with pytest.raises(ValueError):
            Ddr3Scrambler(boot_seed=1, address_map=address_map_for("skylake"))
