"""Tests for shared scrambler machinery and the BIOS seed policy."""

import pytest

from repro.scrambler.base import bios_seed
from repro.scrambler.ddr4 import Ddr4Scrambler


class TestBiosSeedPolicy:
    def test_resetting_vendor_changes_seed_each_boot(self):
        seeds = {bios_seed(boot, vendor_resets_seed=True) for boot in range(5)}
        assert len(seeds) == 5

    def test_sticky_vendor_reuses_seed(self):
        """§III-B: 'BIOS from certain vendors do not reset the scrambler seed'."""
        seeds = {bios_seed(boot, vendor_resets_seed=False) for boot in range(5)}
        assert len(seeds) == 1

    def test_seed_differs_across_machines(self):
        assert bios_seed(1, machine_id=1) != bios_seed(1, machine_id=2)


class TestKeyCache:
    def test_cache_consistency_after_reseed(self):
        scrambler = Ddr4Scrambler(boot_seed=10)
        first = scrambler.key_for(0, 5)
        assert scrambler.key_for(0, 5) is first  # cached object
        scrambler.reseed(11)
        assert scrambler.key_for(0, 5) != first

    def test_key_index_validated(self):
        scrambler = Ddr4Scrambler(boot_seed=10)
        with pytest.raises(ValueError):
            scrambler.key_for(0, 4096)

    def test_keystream_alias_requires_alignment(self):
        scrambler = Ddr4Scrambler(boot_seed=10)
        assert scrambler.keystream_for_block(64) == scrambler.key_for_address(64)
        with pytest.raises(ValueError):
            scrambler.keystream_for_block(65)
