"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.crypto.aes import expand_key
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


@pytest.fixture
def scrambled_dump_file(tmp_path):
    """A small scrambled dump with exposed keys and one planted schedule."""
    scrambler = Ddr4Scrambler(boot_seed=77)
    n_blocks = 3 * 4096
    rng = SplitMix64(1)
    plain = bytearray(rng.next_bytes(n_blocks * 64))
    for b in range(0, n_blocks, 3):
        plain[b * 64 : (b + 1) * 64] = bytes(64)
    master = rng.next_bytes(32)
    plain[500 * 64 + 9 : 500 * 64 + 9 + 240] = expand_key(master)
    path = tmp_path / "dump.bin"
    MemoryImage(scrambler.scramble_range(0, bytes(plain))).save(path)
    return str(path), master


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        one_arg = {"mine", "attack", "keyfind"}
        two_arg = {"analyze"}
        for command in ("demo", "mine", "attack", "keyfind", "figure3", "figures",
                        "analyze", "retention", "engines"):
            if command in one_arg:
                argv = [command, "x"]
            elif command in two_arg:
                argv = [command, "x", "y"]
            else:
                argv = [command]
            assert parser.parse_args(argv).command == command


class TestCommands:
    def test_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "ChaCha8" in out and "Atom N280" in out

    def test_retention(self, capsys):
        assert main(["retention"]) == 0
        assert "DDR4_A" in capsys.readouterr().out

    def test_figure3(self, tmp_path, capsys):
        assert main(["figure3", "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "figure3_a_original.pgm").exists()
        assert len(list(tmp_path.glob("*.pgm"))) == 5

    def test_mine(self, scrambled_dump_file, capsys):
        path, _ = scrambled_dump_file
        assert main(["mine", path, "--top", "3", "--no-limit"]) == 0
        out = capsys.readouterr().out
        assert "candidate scrambler keys" in out

    def test_attack(self, scrambled_dump_file, capsys):
        path, master = scrambled_dump_file
        assert main(["attack", path]) == 0
        assert master.hex() in capsys.readouterr().out

    def test_keyfind_on_plaintext(self, tmp_path, capsys):
        master = b"\x5e" * 32
        blob = bytearray(SplitMix64(2).next_bytes(64 * 512))
        blob[3000 : 3000 + 240] = expand_key(master)
        path = tmp_path / "plain.bin"
        path.write_bytes(bytes(blob))
        assert main(["keyfind", str(path)]) == 0
        assert master.hex() in capsys.readouterr().out

    def test_keyfind_failure_exit_code(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(SplitMix64(3).next_bytes(64 * 64))
        assert main(["keyfind", str(path)]) == 1


    def test_analyze(self, tmp_path, capsys):
        from repro.scrambler.ddr4 import Ddr4Scrambler

        a, b = tmp_path / "b1.bin", tmp_path / "b2.bin"
        MemoryImage(Ddr4Scrambler(boot_seed=1).scramble_range(0, bytes(8192 * 64))).save(a)
        MemoryImage(Ddr4Scrambler(boot_seed=2).scramble_range(0, bytes(8192 * 64))).save(b)
        assert main(["analyze", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "4096" in out and "DDR4/Skylake-class" in out

    def test_figures(self, tmp_path):
        assert main(["figures", "--output-dir", str(tmp_path)]) == 0
        assert list(tmp_path.glob("*.svg"))


class TestResilientAttackCli:
    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["attack", "dump.bin", "--workers", "4", "--shards", "16",
             "--checkpoint", "scan.jsonl", "--resume"]
        )
        assert (args.workers, args.shards) == (4, 16)
        assert args.checkpoint == "scan.jsonl"
        assert args.resume

    def test_missing_dump_is_one_line_error(self, capsys):
        assert main(["attack", "/no/such/dump.bin"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_sub_block_dump_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"x" * 10)
        assert main(["attack", str(path)]) == 2
        assert "not even one" in capsys.readouterr().err

    def test_stale_checkpoint_is_one_line_error(self, tmp_path, capsys):
        # A journal pinned to a different dump must refuse to resume.
        dump = tmp_path / "dump.bin"
        dump.write_bytes(bytes(4 * 64))
        journal = tmp_path / "scan.jsonl"
        journal.write_text(
            '{"dump_len": 1, "dump_sha256": "ff", "key_bits": 256, '
            '"n_shards": 1, "overlap_bytes": 304, "version": 1, "type": "header"}\n'
        )
        assert main(["attack", str(dump), "--checkpoint", str(journal)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sharded_attack_with_resume(self, scrambled_dump_file, capsys, tmp_path):
        dump_path, master = scrambled_dump_file
        journal = str(tmp_path / "scan.jsonl")
        assert main(["attack", dump_path, "--workers", "2", "--shards", "4",
                     "--checkpoint", journal]) == 0
        first = capsys.readouterr().out
        assert master.hex() in first
        assert "shards=4" in first
        # Second run resumes everything from the journal.
        assert main(["attack", dump_path, "--checkpoint", journal]) == 0
        second = capsys.readouterr().out
        assert "resumed: 4/4" in second
        assert master.hex() in second


class TestDecodedStageCli:
    def test_parser_accepts_decode_flags(self):
        args = build_parser().parse_args(
            ["attack", "dump.bin", "--adaptive", "--max-stage", "decoded",
             "--decode-iters", "96", "--checkpoint", "scan.jsonl"]
        )
        assert args.adaptive
        assert args.max_stage == "decoded"
        assert args.decode_iters == 96
        assert args.checkpoint == "scan.jsonl"

    def test_parser_rejects_unknown_stage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["attack", "dump.bin", "--adaptive", "--max-stage", "turbo"]
            )

    def test_adaptive_still_refuses_sharding_flags(self, tmp_path, capsys):
        dump = tmp_path / "dump.bin"
        dump.write_bytes(bytes(4 * 64))
        assert main(["attack", str(dump), "--adaptive", "--workers", "4"]) == 2
        assert "--adaptive runs monolithically" in capsys.readouterr().err

    def test_adaptive_accepts_a_checkpoint_sidecar(self, scrambled_dump_file,
                                                   capsys, tmp_path):
        """--checkpoint with --adaptive is the decode-state sidecar, not
        an error (the --resume path for deadline-interrupted decodes)."""
        dump_path, master = scrambled_dump_file
        journal = str(tmp_path / "scan.jsonl")
        assert main(["attack", dump_path, "--adaptive",
                     "--checkpoint", journal]) == 0
        assert master.hex() in capsys.readouterr().out


class TestResumePreflight:
    """--resume against a bad journal is one readable line, not a trace."""

    def test_missing_journal_is_one_line_error(self, tmp_path, capsys):
        dump = tmp_path / "dump.bin"
        dump.write_bytes(bytes(4 * 64))
        missing = str(tmp_path / "nowhere.jsonl")
        assert main(["attack", str(dump), "--resume",
                     "--checkpoint", missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no such checkpoint journal" in err
        assert "drop --resume" in err

    def test_missing_default_journal_is_one_line_error(self, tmp_path, capsys):
        dump = tmp_path / "dump.bin"
        dump.write_bytes(bytes(4 * 64))
        assert main(["attack", str(dump), "--resume"]) == 2
        err = capsys.readouterr().err
        assert "no such checkpoint journal" in err
        assert f"{dump}.checkpoint.jsonl" in err

    def test_corrupt_journal_names_the_offending_line(
            self, scrambled_dump_file, capsys, tmp_path):
        dump_path, _ = scrambled_dump_file
        journal = str(tmp_path / "scan.jsonl")
        assert main(["attack", dump_path, "--workers", "2", "--shards", "4",
                     "--checkpoint", journal]) == 0
        capsys.readouterr()
        lines = open(journal, encoding="utf-8").readlines()
        lines[1] = lines[1].rstrip()[:-12] + "<<CORRUPT>>\n"
        open(journal, "w", encoding="utf-8").writelines(lines)
        assert main(["attack", dump_path, "--resume",
                     "--checkpoint", journal]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "line 2" in err

    def test_torn_tail_still_resumes(self, scrambled_dump_file, capsys, tmp_path):
        """Truncating the final record (a crash mid-append) is repairable,
        so preflight lets the resume proceed."""
        dump_path, master = scrambled_dump_file
        journal = str(tmp_path / "scan.jsonl")
        assert main(["attack", dump_path, "--workers", "2", "--shards", "4",
                     "--checkpoint", journal]) == 0
        capsys.readouterr()
        raw = open(journal, "rb").read()
        open(journal, "wb").write(raw[:-7])  # tear the last record
        assert main(["attack", dump_path, "--resume",
                     "--checkpoint", journal]) == 0
        assert master.hex() in capsys.readouterr().out


class TestServiceCommandsParser:
    def test_service_commands_registered(self):
        parser = build_parser()
        for argv in (["serve", "svc"],
                     ["submit", "svc", "dump.bin"],
                     ["status", "svc"],
                     ["status", "svc", "job-1", "--wait"],
                     ["cancel", "svc", "job-1"],
                     ["watch", "svc", "job-1"]):
            assert parser.parse_args(argv).command == argv[0]

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "svc", "--workers", "4", "--max-queued", "8",
             "--max-attempts", "2", "--idle-exit", "5"])
        assert args.workers == 4
        assert args.max_queued == 8
        assert args.max_attempts == 2
        assert args.idle_exit == 5.0

    def test_submit_flags(self):
        args = build_parser().parse_args(
            ["submit", "svc", "dump.bin", "--scan-workers", "2",
             "--shards", "4", "--deadline", "30", "--priority", "0",
             "--submitter", "alice", "--no-wait"])
        assert args.scan_workers == 2
        assert args.shards == 4
        assert args.deadline == 30.0
        assert args.priority == 0
        assert args.submitter == "alice"
        assert args.no_wait


class TestServiceCommandsOffline:
    """Client commands against a directory with no server running."""

    def test_submit_no_wait_spools_durably(self, tmp_path, capsys):
        dump = tmp_path / "dump.bin"
        dump.write_bytes(bytes(4 * 64))
        svc = tmp_path / "svc"
        assert main(["submit", str(svc), str(dump), "--job-id", "job-s",
                     "--no-wait"]) == 0
        assert "submitted job-s" in capsys.readouterr().out
        assert (svc / "spool" / "job-s.submit.json").exists()

    def test_status_reports_spooled_submission(self, tmp_path, capsys):
        dump = tmp_path / "dump.bin"
        dump.write_bytes(bytes(4 * 64))
        svc = tmp_path / "svc"
        main(["submit", str(svc), str(dump), "--job-id", "job-s", "--no-wait"])
        capsys.readouterr()
        assert main(["status", str(svc), "job-s"]) == 0
        assert '"SPOOLED"' in capsys.readouterr().out

    def test_unknown_job_is_one_line_error(self, tmp_path, capsys):
        svc = tmp_path / "svc"
        svc.mkdir()
        assert main(["status", str(svc), "job-nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "job-nope" in err

    def test_cancel_unknown_job_is_one_line_error(self, tmp_path, capsys):
        svc = tmp_path / "svc"
        svc.mkdir()
        assert main(["cancel", str(svc), "job-nope"]) == 2
        assert "job-nope" in capsys.readouterr().err
