"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.crypto.aes import expand_key
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


@pytest.fixture
def scrambled_dump_file(tmp_path):
    """A small scrambled dump with exposed keys and one planted schedule."""
    scrambler = Ddr4Scrambler(boot_seed=77)
    n_blocks = 3 * 4096
    rng = SplitMix64(1)
    plain = bytearray(rng.next_bytes(n_blocks * 64))
    for b in range(0, n_blocks, 3):
        plain[b * 64 : (b + 1) * 64] = bytes(64)
    master = rng.next_bytes(32)
    plain[500 * 64 + 9 : 500 * 64 + 9 + 240] = expand_key(master)
    path = tmp_path / "dump.bin"
    MemoryImage(scrambler.scramble_range(0, bytes(plain))).save(path)
    return str(path), master


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        one_arg = {"mine", "attack", "keyfind"}
        two_arg = {"analyze"}
        for command in ("demo", "mine", "attack", "keyfind", "figure3", "figures",
                        "analyze", "retention", "engines"):
            if command in one_arg:
                argv = [command, "x"]
            elif command in two_arg:
                argv = [command, "x", "y"]
            else:
                argv = [command]
            assert parser.parse_args(argv).command == command


class TestCommands:
    def test_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "ChaCha8" in out and "Atom N280" in out

    def test_retention(self, capsys):
        assert main(["retention"]) == 0
        assert "DDR4_A" in capsys.readouterr().out

    def test_figure3(self, tmp_path, capsys):
        assert main(["figure3", "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "figure3_a_original.pgm").exists()
        assert len(list(tmp_path.glob("*.pgm"))) == 5

    def test_mine(self, scrambled_dump_file, capsys):
        path, _ = scrambled_dump_file
        assert main(["mine", path, "--top", "3", "--no-limit"]) == 0
        out = capsys.readouterr().out
        assert "candidate scrambler keys" in out

    def test_attack(self, scrambled_dump_file, capsys):
        path, master = scrambled_dump_file
        assert main(["attack", path]) == 0
        assert master.hex() in capsys.readouterr().out

    def test_keyfind_on_plaintext(self, tmp_path, capsys):
        master = b"\x5e" * 32
        blob = bytearray(SplitMix64(2).next_bytes(64 * 512))
        blob[3000 : 3000 + 240] = expand_key(master)
        path = tmp_path / "plain.bin"
        path.write_bytes(bytes(blob))
        assert main(["keyfind", str(path)]) == 0
        assert master.hex() in capsys.readouterr().out

    def test_keyfind_failure_exit_code(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(SplitMix64(3).next_bytes(64 * 64))
        assert main(["keyfind", str(path)]) == 1


    def test_analyze(self, tmp_path, capsys):
        from repro.scrambler.ddr4 import Ddr4Scrambler

        a, b = tmp_path / "b1.bin", tmp_path / "b2.bin"
        MemoryImage(Ddr4Scrambler(boot_seed=1).scramble_range(0, bytes(8192 * 64))).save(a)
        MemoryImage(Ddr4Scrambler(boot_seed=2).scramble_range(0, bytes(8192 * 64))).save(b)
        assert main(["analyze", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "4096" in out and "DDR4/Skylake-class" in out

    def test_figures(self, tmp_path):
        assert main(["figures", "--output-dir", str(tmp_path)]) == 0
        assert list(tmp_path.glob("*.svg"))


class TestResilientAttackCli:
    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["attack", "dump.bin", "--workers", "4", "--shards", "16",
             "--checkpoint", "scan.jsonl", "--resume"]
        )
        assert (args.workers, args.shards) == (4, 16)
        assert args.checkpoint == "scan.jsonl"
        assert args.resume

    def test_missing_dump_is_one_line_error(self, capsys):
        assert main(["attack", "/no/such/dump.bin"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_sub_block_dump_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"x" * 10)
        assert main(["attack", str(path)]) == 2
        assert "not even one" in capsys.readouterr().err

    def test_stale_checkpoint_is_one_line_error(self, tmp_path, capsys):
        # A journal pinned to a different dump must refuse to resume.
        dump = tmp_path / "dump.bin"
        dump.write_bytes(bytes(4 * 64))
        journal = tmp_path / "scan.jsonl"
        journal.write_text(
            '{"dump_len": 1, "dump_sha256": "ff", "key_bits": 256, '
            '"n_shards": 1, "overlap_bytes": 304, "version": 1, "type": "header"}\n'
        )
        assert main(["attack", str(dump), "--checkpoint", str(journal)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sharded_attack_with_resume(self, scrambled_dump_file, capsys, tmp_path):
        dump_path, master = scrambled_dump_file
        journal = str(tmp_path / "scan.jsonl")
        assert main(["attack", dump_path, "--workers", "2", "--shards", "4",
                     "--checkpoint", journal]) == 0
        first = capsys.readouterr().out
        assert master.hex() in first
        assert "shards=4" in first
        # Second run resumes everything from the journal.
        assert main(["attack", dump_path, "--checkpoint", journal]) == 0
        second = capsys.readouterr().out
        assert "resumed: 4/4" in second
        assert master.hex() in second


class TestDecodedStageCli:
    def test_parser_accepts_decode_flags(self):
        args = build_parser().parse_args(
            ["attack", "dump.bin", "--adaptive", "--max-stage", "decoded",
             "--decode-iters", "96", "--checkpoint", "scan.jsonl"]
        )
        assert args.adaptive
        assert args.max_stage == "decoded"
        assert args.decode_iters == 96
        assert args.checkpoint == "scan.jsonl"

    def test_parser_rejects_unknown_stage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["attack", "dump.bin", "--adaptive", "--max-stage", "turbo"]
            )

    def test_adaptive_still_refuses_sharding_flags(self, tmp_path, capsys):
        dump = tmp_path / "dump.bin"
        dump.write_bytes(bytes(4 * 64))
        assert main(["attack", str(dump), "--adaptive", "--workers", "4"]) == 2
        assert "--adaptive runs monolithically" in capsys.readouterr().err

    def test_adaptive_accepts_a_checkpoint_sidecar(self, scrambled_dump_file,
                                                   capsys, tmp_path):
        """--checkpoint with --adaptive is the decode-state sidecar, not
        an error (the --resume path for deadline-interrupted decodes)."""
        dump_path, master = scrambled_dump_file
        journal = str(tmp_path / "scan.jsonl")
        assert main(["attack", dump_path, "--adaptive",
                     "--checkpoint", journal]) == 0
        assert master.hex() in capsys.readouterr().out
