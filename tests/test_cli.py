"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.crypto.aes import expand_key
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


@pytest.fixture
def scrambled_dump_file(tmp_path):
    """A small scrambled dump with exposed keys and one planted schedule."""
    scrambler = Ddr4Scrambler(boot_seed=77)
    n_blocks = 3 * 4096
    rng = SplitMix64(1)
    plain = bytearray(rng.next_bytes(n_blocks * 64))
    for b in range(0, n_blocks, 3):
        plain[b * 64 : (b + 1) * 64] = bytes(64)
    master = rng.next_bytes(32)
    plain[500 * 64 + 9 : 500 * 64 + 9 + 240] = expand_key(master)
    path = tmp_path / "dump.bin"
    MemoryImage(scrambler.scramble_range(0, bytes(plain))).save(path)
    return str(path), master


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        one_arg = {"mine", "attack", "keyfind"}
        two_arg = {"analyze"}
        for command in ("demo", "mine", "attack", "keyfind", "figure3", "figures",
                        "analyze", "retention", "engines"):
            if command in one_arg:
                argv = [command, "x"]
            elif command in two_arg:
                argv = [command, "x", "y"]
            else:
                argv = [command]
            assert parser.parse_args(argv).command == command


class TestCommands:
    def test_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "ChaCha8" in out and "Atom N280" in out

    def test_retention(self, capsys):
        assert main(["retention"]) == 0
        assert "DDR4_A" in capsys.readouterr().out

    def test_figure3(self, tmp_path, capsys):
        assert main(["figure3", "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "figure3_a_original.pgm").exists()
        assert len(list(tmp_path.glob("*.pgm"))) == 5

    def test_mine(self, scrambled_dump_file, capsys):
        path, _ = scrambled_dump_file
        assert main(["mine", path, "--top", "3", "--no-limit"]) == 0
        out = capsys.readouterr().out
        assert "candidate scrambler keys" in out

    def test_attack(self, scrambled_dump_file, capsys):
        path, master = scrambled_dump_file
        assert main(["attack", path]) == 0
        assert master.hex() in capsys.readouterr().out

    def test_keyfind_on_plaintext(self, tmp_path, capsys):
        master = b"\x5e" * 32
        blob = bytearray(SplitMix64(2).next_bytes(64 * 512))
        blob[3000 : 3000 + 240] = expand_key(master)
        path = tmp_path / "plain.bin"
        path.write_bytes(bytes(blob))
        assert main(["keyfind", str(path)]) == 0
        assert master.hex() in capsys.readouterr().out

    def test_keyfind_failure_exit_code(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(SplitMix64(3).next_bytes(64 * 64))
        assert main(["keyfind", str(path)]) == 1


    def test_analyze(self, tmp_path, capsys):
        from repro.scrambler.ddr4 import Ddr4Scrambler

        a, b = tmp_path / "b1.bin", tmp_path / "b2.bin"
        MemoryImage(Ddr4Scrambler(boot_seed=1).scramble_range(0, bytes(8192 * 64))).save(a)
        MemoryImage(Ddr4Scrambler(boot_seed=2).scramble_range(0, bytes(8192 * 64))).save(b)
        assert main(["analyze", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "4096" in out and "DDR4/Skylake-class" in out

    def test_figures(self, tmp_path):
        assert main(["figures", "--output-dir", str(tmp_path)]) == 0
        assert list(tmp_path.glob("*.svg"))
