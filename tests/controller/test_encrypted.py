"""Tests for the §IV stream-cipher memory encryption engine."""

import pytest

from repro.controller.controller import MemoryController
from repro.controller.encrypted import SUPPORTED_CIPHERS, StreamCipherEngine
from repro.crypto.chacha import ChaCha
from repro.dram.address import address_map_for
from repro.dram.module import DramModule


class TestEngineConstruction:
    @pytest.mark.parametrize("cipher", SUPPORTED_CIPHERS)
    def test_from_boot_seed(self, cipher):
        engine = StreamCipherEngine.from_boot_seed(cipher, boot_seed=77)
        assert len(engine.keystream_for_block(0)) == 64

    def test_rejects_unknown_cipher(self):
        with pytest.raises(ValueError):
            StreamCipherEngine("rc4", bytes(32), bytes(12))

    def test_rejects_wrong_key_size(self):
        with pytest.raises(ValueError):
            StreamCipherEngine("aes128", bytes(32), bytes(8))

    def test_counters_per_block(self):
        chacha = StreamCipherEngine.from_boot_seed("chacha8", 1)
        aes = StreamCipherEngine.from_boot_seed("aes128", 1)
        assert chacha.counters_per_block == 1
        assert aes.counters_per_block == 4


class TestKeystreamProperties:
    def test_address_is_the_counter(self):
        """Per §IV-B: the physical (block) address is the CTR counter."""
        key, nonce = bytes(range(32)), bytes(12)
        engine = StreamCipherEngine("chacha8", key, nonce)
        reference = ChaCha(key, rounds=8, nonce=nonce)
        assert engine.keystream_for_block(5 * 64) == reference.keystream_block(5)

    def test_every_block_unique_keystream(self):
        engine = StreamCipherEngine.from_boot_seed("chacha8", 42)
        streams = {engine.keystream_for_block(i * 64) for i in range(256)}
        assert len(streams) == 256

    def test_keystream_fixed_per_address(self):
        """The §IV weakness: same address, same keystream, every time."""
        engine = StreamCipherEngine.from_boot_seed("aes256", 42)
        assert engine.keystream_for_block(128) == engine.keystream_for_block(128)

    def test_boot_seed_changes_keystream(self):
        a = StreamCipherEngine.from_boot_seed("chacha8", 1)
        b = StreamCipherEngine.from_boot_seed("chacha8", 2)
        assert a.keystream_for_block(0) != b.keystream_for_block(0)

    def test_alignment_enforced(self):
        engine = StreamCipherEngine.from_boot_seed("chacha8", 1)
        with pytest.raises(ValueError):
            engine.keystream_for_block(13)

    def test_aes_consumes_four_counters(self):
        """Block i uses CTR counters 4i..4i+3 — adjacent blocks differ."""
        engine = StreamCipherEngine.from_boot_seed("aes128", 9)
        a = engine.keystream_for_block(0)
        b = engine.keystream_for_block(64)
        assert a[48:] != b[:16]  # streams are from disjoint counters


class TestEncryptedController:
    def test_roundtrip_through_encrypted_memory(self):
        amap = address_map_for("skylake")
        module = DramModule(1 << 18, "DDR4_A", serial=3)
        engine = StreamCipherEngine.from_boot_seed("chacha8", 101)
        mc = MemoryController(amap, {0: module}, engine)
        mc.write(4096, b"secrets" * 100)
        assert mc.read(4096, 700) == b"secrets" * 100
        assert module.raw_read(4096, 64) != (b"secrets" * 100)[:64]
