"""Property tests: the controller vs a flat reference memory.

Whatever sequence of reads and writes software performs, a machine with
a scrambler (or cipher engine) in the path must be indistinguishable
from a flat byte array — the transform is supposed to be transparent.
Hypothesis drives random access sequences against both and compares.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.controller.controller import MemoryController
from repro.controller.encrypted import StreamCipherEngine
from repro.dram.address import address_map_for
from repro.dram.module import DramModule
from repro.scrambler.ddr4 import Ddr4Scrambler

MEMORY = 1 << 16  # 64 KiB keeps the property fast


def build_controller(kind: str) -> MemoryController:
    amap = address_map_for("skylake")
    module = DramModule(MEMORY, "DDR4_A", serial=1)
    if kind == "scrambler":
        transform = Ddr4Scrambler(boot_seed=9, address_map=amap)
    elif kind == "chacha8":
        transform = StreamCipherEngine.from_boot_seed("chacha8", 9)
    else:
        transform = None
    return MemoryController(amap, {0: module}, transform)


operation = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=MEMORY - 1),
    st.integers(min_value=1, max_value=300),
)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
@given(ops=st.lists(operation, min_size=1, max_size=12), data=st.data())
def test_scrambled_controller_equals_flat_memory(ops, data):
    controller = build_controller("scrambler")
    reference = bytearray(MEMORY)
    # The simulated module starts at its ground state, which software
    # would see through the descrambler; initialise both to zero instead.
    controller.write(0, bytes(MEMORY))
    for kind, address, length in ops:
        length = min(length, MEMORY - address)
        if kind == "write":
            payload = data.draw(st.binary(min_size=length, max_size=length))
            controller.write(address, payload)
            reference[address : address + length] = payload
        else:
            assert controller.read(address, length) == bytes(
                reference[address : address + length]
            )
    assert controller.read(0, MEMORY) == bytes(reference)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
@given(ops=st.lists(operation, min_size=1, max_size=8), data=st.data())
def test_encrypted_controller_equals_flat_memory(ops, data):
    controller = build_controller("chacha8")
    reference = bytearray(MEMORY)
    controller.write(0, bytes(MEMORY))
    for kind, address, length in ops:
        length = min(length, MEMORY - address)
        if kind == "write":
            payload = data.draw(st.binary(min_size=length, max_size=length))
            controller.write(address, payload)
            reference[address : address + length] = payload
        else:
            assert controller.read(address, length) == bytes(
                reference[address : address + length]
            )
    assert controller.read(0, MEMORY) == bytes(reference)


@settings(max_examples=25, deadline=None)
@given(
    address=st.integers(min_value=0, max_value=(MEMORY - 64) // 64).map(lambda b: b * 64),
    block=st.binary(min_size=64, max_size=64),
)
def test_scramble_is_involution_on_any_block(address, block):
    scrambler = Ddr4Scrambler(boot_seed=3)
    once = scrambler.scramble_block(address, block)
    assert scrambler.scramble_block(address, once) == block


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**63),
    index=st.integers(min_value=0, max_value=4095),
)
def test_key_generation_is_pure(seed, index):
    """Key generation must be a pure function of (seed, channel, index)."""
    a = Ddr4Scrambler(boot_seed=seed).key_for(0, index)
    b = Ddr4Scrambler(boot_seed=seed).key_for(0, index)
    assert a == b
