"""Bulk data path vs the frozen seed path: byte-identical, always.

The vectorised controller/scrambler pipeline must be observationally
identical to the seed's per-block loops (preserved in
``benchmarks.legacy_machine``): same module contents after any write
sequence, same read bytes at any alignment, same bus trace.  Hypothesis
drives unaligned offsets and lengths across single- and dual-channel
maps, with the transform enabled and disabled and tracing on and off.
"""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent))

from benchmarks.legacy_machine import LegacyMemoryController  # noqa: E402

from repro.controller.controller import MemoryController
from repro.controller.encrypted import StreamCipherEngine
from repro.dram.address import address_map_for
from repro.dram.module import DramModule
from repro.scrambler.ddr3 import Ddr3Scrambler
from repro.scrambler.ddr4 import Ddr4Scrambler

MEMORY = 1 << 16  # 64 KiB keeps the properties fast


def build_pair(generation: str, channels: int, transform_kind: str, trace: bool):
    """The same machine twice: bulk controller and frozen seed controller."""
    amap = address_map_for(generation, channels)
    per_channel = MEMORY // channels

    def controller(cls):
        modules = {ch: DramModule(per_channel, serial=ch) for ch in range(channels)}
        if transform_kind == "scrambler":
            if amap.keys_per_channel == 16:
                transform = Ddr3Scrambler(boot_seed=9, address_map=amap)
            else:
                transform = Ddr4Scrambler(boot_seed=9, address_map=amap)
        elif transform_kind == "none":
            transform = None
        else:
            transform = StreamCipherEngine.from_boot_seed(transform_kind, 9)
        return cls(amap, modules, transform, trace_bus=trace)

    return controller(MemoryController), controller(LegacyMemoryController)


operation = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=MEMORY - 1),
    st.integers(min_value=0, max_value=520),
)

CONFIGS = [
    ("skylake", 1, "scrambler"),
    ("skylake", 2, "scrambler"),
    ("sandybridge", 2, "scrambler"),
    ("skylake", 2, "chacha8"),
    ("skylake", 1, "aes128"),
    ("skylake", 2, "none"),
]


@pytest.mark.parametrize("generation,channels,transform_kind", CONFIGS)
@pytest.mark.parametrize("trace", [False, True])
@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.data_too_large]
)
@given(ops=st.lists(operation, min_size=1, max_size=10), data=st.data())
def test_bulk_path_matches_seed_path(generation, channels, transform_kind, trace, ops, data):
    bulk, seed = build_pair(generation, channels, transform_kind, trace)
    for kind, address, length in ops:
        length = min(length, MEMORY - address)
        if kind == "write":
            payload = data.draw(st.binary(min_size=length, max_size=length))
            bulk.write(address, payload)
            seed.write(address, payload)
        else:
            assert bulk.read(address, length) == seed.read(address, length)
    # Same raw (scrambled) cell contents in every channel...
    for channel in bulk.modules:
        assert bulk.modules[channel].dump() == seed.modules[channel].dump()
    # ...and the interposer saw the same transactions in the same order.
    assert bulk.bus_trace == seed.bus_trace
    if not trace:
        assert bulk.bus_trace == []


@pytest.mark.parametrize("channels", [1, 2])
def test_transform_toggle_matches_seed_path(channels):
    """The BIOS disable toggle behaves identically on both paths."""
    bulk, seed = build_pair("skylake", channels, "scrambler", trace=False)
    payload = bytes(range(256)) * 8
    for controller in (bulk, seed):
        controller.write(131, payload)
        controller.transform_enabled = False
    assert bulk.read(0, 4096) == seed.read(0, 4096)
    for controller in (bulk, seed):
        controller.write(700, payload)
    for channel in bulk.modules:
        assert bulk.modules[channel].dump() == seed.modules[channel].dump()


@pytest.mark.parametrize("channels", [1, 2])
@settings(max_examples=20, deadline=None)
@given(
    address=st.integers(min_value=0, max_value=MEMORY - 1),
    length=st.integers(min_value=0, max_value=2048),
)
def test_read_into_matches_read(channels, address, length):
    bulk, _ = build_pair("skylake", channels, "scrambler", trace=False)
    rng = np.random.default_rng(3)
    bulk.write(0, rng.integers(0, 256, MEMORY, dtype=np.uint8).tobytes())
    length = min(length, MEMORY - address)
    buffer = bytearray(length)
    bulk.read_into(address, memoryview(buffer))
    assert bytes(buffer) == bulk.read(address, length)


def test_read_into_rejects_readonly_buffer():
    bulk, _ = build_pair("skylake", 1, "none", trace=False)
    with pytest.raises(ValueError, match="writable"):
        bulk.read_into(0, bytes(64))


def test_write_accepts_any_buffer_zero_copy():
    """memoryview / bytearray / ndarray payloads all work without a copy."""
    bulk, seed = build_pair("skylake", 1, "scrambler", trace=False)
    payload = np.arange(300, dtype=np.uint8)
    bulk.write(37, memoryview(payload))
    seed.write(37, payload.tobytes())
    bulk.write(1000, bytearray(b"x" * 99))
    seed.write(1000, b"x" * 99)
    assert bulk.modules[0].dump() == seed.modules[0].dump()


def test_out_of_range_bulk_write_raises():
    bulk, seed = build_pair("skylake", 2, "scrambler", trace=False)
    data = bytes(4096)
    with pytest.raises(ValueError, match="maps beyond channel"):
        bulk.write(MEMORY - 1024, data)
    with pytest.raises(ValueError):
        seed.write(MEMORY - 1024, data)


# --------------------------------------------------- batched generator identity


def test_ddr3_key_pool_matches_scalar_generation():
    scrambler = Ddr3Scrambler(boot_seed=77, address_map=address_map_for("sandybridge", 2))
    for channel in range(2):
        pool = scrambler.key_pool(channel)
        for index in range(scrambler.keys_per_channel):
            assert pool[index].tobytes() == scrambler._generate_key(channel, index)


def test_ddr4_key_pool_matches_scalar_generation():
    scrambler = Ddr4Scrambler(boot_seed=77, address_map=address_map_for("skylake", 2))
    pool = scrambler.key_pool(1)
    rng = np.random.default_rng(0)
    for index in rng.choice(scrambler.keys_per_channel, size=64, replace=False):
        assert pool[index].tobytes() == scrambler._generate_key(1, int(index))


@pytest.mark.parametrize("cipher", ["chacha8", "chacha20", "aes128", "aes256"])
def test_cipher_range_keystream_matches_per_block(cipher):
    engine = StreamCipherEngine.from_boot_seed(cipher, 13)
    base = 4096
    rows = engine.keystream_for_range(base, 17)
    for i in range(17):
        assert rows[i].tobytes() == engine.keystream_for_block(base + i * 64)


@pytest.mark.parametrize("channels", [1, 2])
def test_scrambler_range_keystream_matches_per_block(channels):
    scrambler = Ddr4Scrambler(boot_seed=5, address_map=address_map_for("skylake", channels))
    base = 128
    rows = scrambler.keystream_for_range(base, 33)
    for i in range(33):
        assert rows[i].tobytes() == scrambler.keystream_for_block(base + i * 64)
