"""Tests for the memory controller data path."""

import pytest

from repro.controller.controller import MemoryController
from repro.dram.address import address_map_for
from repro.dram.module import DramModule
from repro.scrambler.ddr4 import Ddr4Scrambler


def make_controller(channels: int = 1, transform: bool = True, trace: bool = False):
    amap = address_map_for("skylake", channels)
    modules = {
        ch: DramModule((1 << 20) // channels, "DDR4_A", serial=ch) for ch in range(channels)
    }
    scrambler = Ddr4Scrambler(boot_seed=55, address_map=amap) if transform else None
    return MemoryController(amap, modules, scrambler, trace_bus=trace)


class TestReadWrite:
    def test_aligned_roundtrip(self):
        mc = make_controller()
        mc.write(0, bytes(range(64)))
        assert mc.read(0, 64) == bytes(range(64))

    def test_unaligned_roundtrip(self):
        mc = make_controller()
        payload = b"unaligned payload spanning blocks" * 5
        mc.write(1000, payload)
        assert mc.read(1000, len(payload)) == payload

    def test_partial_write_preserves_neighbours(self):
        mc = make_controller()
        mc.write(0, bytes(range(64)))
        mc.write(10, b"\xff\xff")
        data = mc.read(0, 64)
        assert data[:10] == bytes(range(10))
        assert data[10:12] == b"\xff\xff"
        assert data[12:] == bytes(range(12, 64))

    def test_data_on_module_is_scrambled(self):
        mc = make_controller()
        mc.write(64, b"A" * 64)
        raw = mc.modules[0].raw_read(64, 64)
        assert raw != b"A" * 64

    def test_plaintext_mode_stores_raw(self):
        mc = make_controller(transform=False)
        mc.write(64, b"A" * 64)
        assert mc.modules[0].raw_read(64, 64) == b"A" * 64

    def test_transform_toggle(self):
        mc = make_controller()
        mc.write(0, b"B" * 64)
        mc.transform_enabled = False
        raw_view = mc.read(0, 64)
        assert raw_view != b"B" * 64
        mc.transform_enabled = True
        assert mc.read(0, 64) == b"B" * 64

    def test_negative_address_rejected(self):
        mc = make_controller()
        with pytest.raises(ValueError):
            mc.read(-1, 4)

    def test_out_of_range_rejected(self):
        mc = make_controller()
        with pytest.raises(ValueError):
            mc.write((1 << 20) - 32, bytes(64))


class TestDualChannel:
    def test_roundtrip_across_channels(self):
        mc = make_controller(channels=2)
        payload = bytes(range(256)) * 2
        mc.write(0, payload)
        assert mc.read(0, len(payload)) == payload

    def test_blocks_interleave(self):
        mc = make_controller(channels=2, transform=False)
        mc.write(0, b"\x11" * 64 + b"\x22" * 64)
        assert mc.modules[0].raw_read(0, 64) == b"\x11" * 64
        assert mc.modules[1].raw_read(0, 64) == b"\x22" * 64

    def test_requires_module_per_channel(self):
        amap = address_map_for("skylake", 2)
        with pytest.raises(ValueError):
            MemoryController(amap, {0: DramModule(1 << 19, "DDR4_A")}, None)

    def test_capacity_sums_channels(self):
        assert make_controller(channels=2).capacity_bytes == 1 << 20


class TestBusTrace:
    def test_trace_records_wire_data(self):
        mc = make_controller(trace=True)
        mc.write(0, b"C" * 64)
        mc.read(0, 64)
        kinds = [t.kind for t in mc.bus_trace]
        assert kinds == ["write", "read"]
        assert mc.bus_trace[0].wire_data == mc.bus_trace[1].wire_data
        assert mc.bus_trace[0].wire_data != b"C" * 64

    def test_raw_wire_injection(self):
        """The replay primitive: captured wire data driven back raw."""
        mc = make_controller(trace=True)
        mc.write(0, b"D" * 64)
        captured = mc.bus_trace[0].wire_data
        mc.write(0, b"E" * 64)
        mc.raw_write_wire(0, captured)
        assert mc.read(0, 64) == b"D" * 64  # replay restored stale data

    def test_raw_wire_requires_alignment(self):
        mc = make_controller()
        with pytest.raises(ValueError):
            mc.raw_write_wire(32, bytes(64))
