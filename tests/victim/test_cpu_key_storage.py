"""Tests for the register-resident key-storage mitigations (§II-B)."""

import pytest

from repro.crypto.aes import AES
from repro.victim.cpu_key_storage import (
    OnTheFlyAes,
    RegisterKeyStore,
    resident_schedule_exposure,
)


class TestRegisterKeyStore:
    def test_store_and_load(self):
        store = RegisterKeyStore("tresor")
        store.store(0, b"k" * 32)
        assert store.load(0) == b"k" * 32

    def test_userspace_blocked(self):
        store = RegisterKeyStore("tresor")
        store.store(0, b"k" * 32)
        with pytest.raises(PermissionError):
            store.load(0, privileged=False)
        with pytest.raises(PermissionError):
            store.store(0, b"x" * 32, privileged=False)

    def test_tresor_has_one_slot(self):
        store = RegisterKeyStore("tresor")
        with pytest.raises(ValueError):
            store.store(1, b"k" * 32)

    def test_loop_amnesia_has_msr_slots(self):
        store = RegisterKeyStore("loop-amnesia")
        for slot in range(8):
            store.store(slot, bytes([slot]) * 16)
        assert store.load(7) == b"\x07" * 16

    def test_key_size_budget(self):
        store = RegisterKeyStore("tresor")
        with pytest.raises(ValueError):
            store.store(0, b"k" * 33)  # > 256 bits

    def test_wipe(self):
        store = RegisterKeyStore("tresor")
        store.store(0, b"k" * 32)
        store.wipe()
        with pytest.raises(KeyError):
            store.load(0)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            RegisterKeyStore("sgx")


class TestOnTheFlyAes:
    def test_matches_conventional_aes(self):
        key = bytes(range(32))
        store = RegisterKeyStore("tresor")
        store.store(0, key)
        otf = OnTheFlyAes(store)
        block = b"sixteen byte blk"
        assert otf.encrypt_block(block) == AES(key).encrypt_block(block)
        assert otf.decrypt_block(otf.encrypt_block(block)) == block

    def test_counts_expansions(self):
        """The §II-B performance cost: one expansion per block operation."""
        store = RegisterKeyStore("tresor")
        store.store(0, bytes(32))
        otf = OnTheFlyAes(store)
        for _ in range(5):
            otf.encrypt_block(bytes(16))
        assert otf.expansions_performed == 5

    def test_no_schedule_left_behind(self):
        """Nothing schedule-shaped survives a block operation."""
        store = RegisterKeyStore("tresor")
        store.store(0, bytes(range(32)))
        otf = OnTheFlyAes(store)
        otf.encrypt_block(bytes(16))
        # The model's "erase": the cipher object dropped its round keys.
        # (In the simulated machine, nothing was ever written to DRAM.)
        assert otf.expansions_performed == 1


class TestExposureContrast:
    def test_resident_schedule_is_searchable(self):
        """The conventional driver's exposure is findable by keyfind."""
        from repro.attack.keyfind import find_aes_keys, unique_master_keys
        from repro.util.rng import SplitMix64

        key = b"\x3d" * 32
        memory = bytearray(SplitMix64(1).next_bytes(64 * 256))
        memory[1000 : 1000 + 240] = resident_schedule_exposure(key)
        assert key in unique_master_keys(find_aes_keys(bytes(memory), 256))

    def test_register_stored_key_is_not_in_memory(self):
        """With TRESOR-style storage the same search finds nothing."""
        from repro.attack.keyfind import find_aes_keys
        from repro.util.rng import SplitMix64

        store = RegisterKeyStore("tresor")
        store.store(0, b"\x3d" * 32)
        memory = SplitMix64(1).next_bytes(64 * 256)  # key never touches RAM
        assert find_aes_keys(memory, 256) == []
