"""Tests for the simulated VeraCrypt/TrueCrypt volume."""

import pytest

from repro.crypto.aes import expand_key
from repro.victim.veracrypt import (
    MASTER_KEY_BYTES,
    SECTOR_BYTES,
    VeraCryptVolume,
    derive_master_key,
)


class TestKeyDerivation:
    def test_deterministic(self):
        assert derive_master_key(b"pw", b"salt-salt") == derive_master_key(b"pw", b"salt-salt")

    def test_password_sensitivity(self):
        assert derive_master_key(b"pw1", b"salt-salt") != derive_master_key(b"pw2", b"salt-salt")

    def test_salt_sensitivity(self):
        assert derive_master_key(b"pw", b"salt-aaaa") != derive_master_key(b"pw", b"salt-bbbb")

    def test_length(self):
        assert len(derive_master_key(b"pw", b"salt-salt")) == MASTER_KEY_BYTES

    def test_validation(self):
        with pytest.raises(ValueError):
            derive_master_key(b"", b"salt-salt")
        with pytest.raises(ValueError):
            derive_master_key(b"pw", b"s")


class TestExpandedKeys:
    def test_resident_bytes_are_two_schedules(self):
        volume = VeraCryptVolume.create(b"pw", b"salt-salt")
        keys = volume.expanded_keys()
        assert len(keys.resident_bytes) == 480
        assert keys.resident_bytes == expand_key(volume.master_key[:32]) + expand_key(
            volume.master_key[32:]
        )

    def test_master_key_at_schedule_heads(self):
        """§III-C step 4: the secret key sits at the head of the table."""
        volume = VeraCryptVolume.create(b"pw", b"salt-salt")
        assert volume.expanded_keys().master_key == volume.master_key


class TestSectorCrypto:
    def test_roundtrip(self):
        volume = VeraCryptVolume.create(b"hunter2", b"salty-salt")
        plaintext = bytes(range(256)) * 2
        for sector in (0, 1, 99999):
            assert volume.decrypt_sector(sector, volume.encrypt_sector(sector, plaintext)) == plaintext

    def test_sector_number_tweaks_ciphertext(self):
        volume = VeraCryptVolume.create(b"pw", b"salt-salt")
        plaintext = b"\x00" * SECTOR_BYTES
        assert volume.encrypt_sector(0, plaintext) != volume.encrypt_sector(1, plaintext)

    def test_identical_blocks_within_sector_differ(self):
        """XEX property: repeated plaintext blocks don't repeat in ciphertext."""
        volume = VeraCryptVolume.create(b"pw", b"salt-salt")
        ciphertext = volume.encrypt_sector(5, b"\xaa" * SECTOR_BYTES)
        blocks = {ciphertext[i : i + 16] for i in range(0, SECTOR_BYTES, 16)}
        assert len(blocks) == SECTOR_BYTES // 16

    def test_recovered_key_reconstructs_volume(self):
        """The attack's end state: master key bytes alone decrypt data."""
        original = VeraCryptVolume.create(b"pw", b"salt-salt")
        ciphertext = original.encrypt_sector(3, b"X" * SECTOR_BYTES)
        clone = VeraCryptVolume(original.master_key)
        assert clone.decrypt_sector(3, ciphertext) == b"X" * SECTOR_BYTES

    def test_validation(self):
        volume = VeraCryptVolume.create(b"pw", b"salt-salt")
        with pytest.raises(ValueError):
            volume.encrypt_sector(0, b"short")
        with pytest.raises(ValueError):
            volume.encrypt_sector(-1, bytes(SECTOR_BYTES))
        with pytest.raises(ValueError):
            VeraCryptVolume(bytes(32))
