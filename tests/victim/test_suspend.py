"""Tests for the suspend-to-RAM acquisition scenario (§II-B)."""

import pytest

from repro.attack.coldboot import TransferConditions, cold_boot_transfer
from repro.attack.pipeline import Ddr4ColdBootAttack
from repro.victim.machine import TABLE_I_MACHINES, Machine
from repro.victim.workload import synthesize_memory


class TestSuspendSemantics:
    def test_suspend_keeps_memory_refreshed(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=71)
        machine.write(0x8000, b"S" * 64)
        machine.suspend()
        machine.wait(600.0)  # minutes pass; self-refresh holds the data
        machine.resume()
        assert machine.read(0x8000, 64) == b"S" * 64

    def test_no_software_access_while_suspended(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=72)
        machine.suspend()
        with pytest.raises(RuntimeError, match="suspended"):
            machine.read(0, 64)

    def test_state_transitions_validated(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=73)
        with pytest.raises(RuntimeError):
            machine.resume()
        machine.shutdown()
        with pytest.raises(RuntimeError):
            machine.suspend()

    def test_shutdown_clears_suspend(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=74)
        machine.suspend()
        machine.shutdown()
        assert not machine.suspended


class TestSleepModeAttack:
    def test_cold_boot_on_a_sleeping_laptop(self):
        """§II-B: disk-encryption key erasure on unmount 'will fail to
        protect ... if the machine is in sleep mode while the attacker
        acquires it' — the suspended machine's keys are still in DRAM."""
        mem = 2 << 20
        victim = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=mem, machine_id=75)
        contents, _ = synthesize_memory(mem - 64 * 1024, zero_fraction=0.35, seed=75)
        victim.write(64 * 1024, contents)
        volume = victim.mount_encrypted_volume(b"pw", key_table_address=(1 << 20) + 19)
        victim.suspend()  # lid closed; laptop in a bag; keys resident

        attacker = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=mem, machine_id=76)
        dump = cold_boot_transfer(
            victim, attacker, TransferConditions(temperature_c=-25.0, transfer_seconds=5.0)
        )
        master = Ddr4ColdBootAttack().recover_xts_master_key(dump)
        assert master == volume.master_key
