"""Tests for simulated machines: boots, swaps, BIOS policy."""

import pytest

from repro.victim.machine import TABLE_I_MACHINES, Machine, MachineSpec


class TestTableI:
    def test_five_machines(self):
        assert len(TABLE_I_MACHINES) == 5

    def test_generations_match_paper(self):
        ddr3 = [m for m in TABLE_I_MACHINES.values() if m.ddr_generation == "DDR3"]
        ddr4 = [m for m in TABLE_I_MACHINES.values() if m.ddr_generation == "DDR4"]
        assert len(ddr3) == 3 and len(ddr4) == 2
        assert all(m.microarchitecture == "skylake" for m in ddr4)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("x", "haswell", "DDR3", "Q1")
        with pytest.raises(ValueError):
            MachineSpec("x", "skylake", "DDR5", "Q1")


class TestBootBehaviour:
    def test_boot_reseeds_scrambler(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=1)
        first = machine.scrambler.key_for(0, 0)
        machine.boot()
        assert machine.scrambler.key_for(0, 0) != first

    def test_sticky_bios_reuses_keys(self):
        spec = MachineSpec("sticky", "skylake", "DDR4", "Q3", bios_resets_seed=False)
        machine = Machine(spec, memory_bytes=1 << 18, machine_id=1)
        first = machine.scrambler.key_for(0, 0)
        machine.boot()
        assert machine.scrambler.key_for(0, 0) == first

    def test_boot_pollutes_low_memory(self):
        machine = Machine(
            TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=1,
            boot_pollution_bytes=4096,
        )
        machine.write(0, bytes(4096))
        machine.boot()
        assert machine.read(0, 4096) != bytes(4096)

    def test_memory_survives_reboot_scrambled(self):
        """Raw cells persist over a reboot; the view through the new
        scrambler is garbled (the Figure 3c/3e experiment)."""
        machine = Machine(
            TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=1,
            boot_pollution_bytes=0,
        )
        machine.write(65536, b"G" * 64)
        raw_before = machine.modules[0].raw_read(65536, 64)
        machine.boot()
        assert machine.modules[0].raw_read(65536, 64) == raw_before
        assert machine.read(65536, 64) != b"G" * 64


class TestProtectionModes:
    def test_plaintext_machine(self):
        machine = Machine(
            TABLE_I_MACHINES["i5-2540M"], memory_bytes=1 << 18, protection="none",
            boot_pollution_bytes=0,
        )
        machine.write(4096, b"P" * 64)
        assert machine.modules[0].raw_read(machine.address_map.channel_local_address(4096), 64) == b"P" * 64

    def test_encrypted_machine(self):
        machine = Machine(
            TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, protection="chacha8",
        )
        machine.write(4096, b"Q" * 64)
        assert machine.read(4096, 64) == b"Q" * 64
        assert machine.modules[0].raw_read(4096, 64) != b"Q" * 64

    def test_unknown_protection_rejected(self):
        with pytest.raises(ValueError):
            Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, protection="rot13")


class TestModuleSwap:
    def test_remove_install_cycle(self):
        donor = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=1)
        recipient = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=1 << 18, machine_id=2)
        donor.shutdown()
        module = donor.remove_module(0)
        assert not module.powered
        recipient.shutdown()
        recipient.remove_module(0)
        recipient.install_module(module, 0)
        recipient.boot()
        assert module.powered
        assert recipient.memory_bytes == 1 << 18

    def test_cannot_run_without_module(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18)
        machine.shutdown()
        machine.remove_module(0)
        with pytest.raises(RuntimeError):
            machine.read(0, 64)
        with pytest.raises(RuntimeError):
            machine.boot()

    def test_double_install_rejected(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18)
        other = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=9)
        other.shutdown()
        spare = other.remove_module(0)
        with pytest.raises(RuntimeError):
            machine.install_module(spare, 0)

    def test_wait_decays_only_unpowered(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=4)
        machine.write(8192, b"W" * 64)
        machine.wait(100.0)  # powered: no effect
        assert machine.read(8192, 64) == b"W" * 64


class TestVolumeMount:
    def test_key_table_resident_in_memory(self):
        machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=1 << 18, machine_id=5)
        volume = machine.mount_encrypted_volume(b"pw", key_table_address=0x8003)
        assert machine.read(0x8003, 480) == volume.expanded_keys().resident_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=100)
