"""Tests for memory content synthesis."""

import numpy as np
import pytest

from repro.analysis.entropy import byte_entropy
from repro.victim.workload import test_image as make_test_image
from repro.victim.workload import (
    code_region,
    heap_region,
    synthesize_memory,
    text_region,
    zero_region,
)


class TestRegionGenerators:
    def test_zero_region(self):
        assert zero_region(256) == bytes(256)

    def test_text_region_is_ascii(self):
        text = text_region(1024, seed=1)
        assert len(text) == 1024
        assert all(32 <= b < 127 for b in text)

    def test_code_region_low_entropy(self):
        code = code_region(4096, seed=1)
        assert len(code) == 4096
        assert byte_entropy(code) < 6.0  # opcode-weighted, not uniform

    def test_heap_region_high_entropy(self):
        heap = heap_region(8192, seed=1)
        assert byte_entropy(heap) > 7.5

    def test_deterministic_per_seed(self):
        assert text_region(512, seed="a") == text_region(512, seed="a")
        assert heap_region(512, seed="a") != heap_region(512, seed="b")


class TestSynthesizedMemory:
    def test_layout_accounts_for_every_byte(self):
        data, layout = synthesize_memory(64 * 1024, zero_fraction=0.4, seed=3)
        assert len(data) == 64 * 1024
        assert sum(r.length for r in layout.regions) == 64 * 1024

    def test_zero_fraction_respected(self):
        data, layout = synthesize_memory(512 * 1024, zero_fraction=0.3, seed=3)
        fraction = layout.total_of("zero") / len(data)
        assert 0.2 < fraction < 0.4

    def test_zero_regions_really_zero(self):
        data, layout = synthesize_memory(64 * 1024, zero_fraction=0.5, seed=4)
        for region in layout.regions:
            if region.kind == "zero":
                assert data[region.address : region.address + region.length] == bytes(region.length)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_memory(1000)  # not region-aligned
        with pytest.raises(ValueError):
            synthesize_memory(4096, zero_fraction=1.5)


class TestTestImage:
    def test_shape_and_determinism(self):
        img = make_test_image(128, 64, seed=1)
        assert img.shape == (64, 128)
        assert np.array_equal(img, make_test_image(128, 64, seed=1))

    def test_has_structure(self):
        """Flat regions dominate — that's what makes Figure 3 visible."""
        img = make_test_image(256, 256)
        assert byte_entropy(img.tobytes()) < 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_test_image(0, 10)
