"""Tests for the encrypted-volume filesystem layer."""

import pytest

from repro.victim.veracrypt import SECTOR_BYTES, VeraCryptVolume
from repro.victim.volume_fs import EncryptedFilesystem, reopen_with_key


@pytest.fixture
def fs() -> EncryptedFilesystem:
    volume = VeraCryptVolume.create(b"password", b"salt-salt")
    filesystem = EncryptedFilesystem(volume, n_sectors=64)
    filesystem.format()
    return filesystem


class TestBasicOperations:
    def test_empty_after_format(self, fs):
        assert fs.list_files() == []

    def test_write_read_roundtrip(self, fs):
        contents = b"the quick brown fox" * 100
        fs.write_file("notes.txt", contents)
        assert fs.read_file("notes.txt") == contents

    def test_multiple_files(self, fs):
        fs.write_file("a.bin", b"A" * 700)
        fs.write_file("b.bin", b"B" * 10)
        fs.write_file("c.bin", b"")
        names = [e.name for e in fs.list_files()]
        assert names == ["a.bin", "b.bin", "c.bin"]
        assert fs.read_file("b.bin") == b"B" * 10
        assert fs.read_file("c.bin") == b""

    def test_extent_allocation_no_overlap(self, fs):
        fs.write_file("x", b"X" * (3 * SECTOR_BYTES))
        fs.write_file("y", b"Y" * SECTOR_BYTES)
        entries = {e.name: e for e in fs.list_files()}
        assert entries["y"].first_sector >= entries["x"].first_sector + 3

    def test_missing_file(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read_file("nope")

    def test_duplicate_name_rejected(self, fs):
        fs.write_file("dup", b"1")
        with pytest.raises(ValueError):
            fs.write_file("dup", b"2")

    def test_volume_full(self, fs):
        with pytest.raises(ValueError):
            fs.write_file("huge", b"Z" * (100 * SECTOR_BYTES))

    def test_long_name_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.write_file("n" * 60, b"x")


class TestAtRestSecurity:
    def test_ciphertext_hides_contents(self, fs):
        secret = b"TOP SECRET DESIGN DOCUMENTS" * 20
        fs.write_file("secret.doc", secret)
        assert b"TOP SECRET" not in fs.ciphertext
        assert b"secret.doc" not in fs.ciphertext

    def test_reopen_with_correct_key(self, fs):
        fs.write_file("file", b"payload")
        stolen = fs.ciphertext
        recovered = reopen_with_key(stolen, fs.volume.master_key)
        assert recovered.read_file("file") == b"payload"

    def test_reopen_with_wrong_key_fails(self, fs):
        fs.write_file("file", b"payload")
        wrong = bytes(64)
        with pytest.raises(ValueError, match="bad magic"):
            reopen_with_key(fs.ciphertext, wrong).list_files()

    def test_reopen_validates_length(self):
        with pytest.raises(ValueError):
            reopen_with_key(b"x" * 100, bytes(64))


class TestEndToEndWithAttack:
    def test_recovered_key_reads_the_victims_files(self):
        """The complete story: dump -> master key -> victim's documents."""
        from repro.attack.pipeline import Ddr4ColdBootAttack
        from repro.attack.sweep import synthetic_dump

        # The victim's container, formatted with their (soon stolen) key.
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=61)
        victim_fs = EncryptedFilesystem(VeraCryptVolume(master), n_sectors=32)
        victim_fs.format()
        victim_fs.write_file("diary.txt", b"nobody will ever read this")
        stolen_container = victim_fs.ciphertext

        recovered_key = Ddr4ColdBootAttack().recover_xts_master_key(dump)
        assert recovered_key == master
        attacker_fs = reopen_with_key(stolen_container, recovered_key)
        assert attacker_fs.read_file("diary.txt") == b"nobody will ever read this"
