"""Tests for the BitLocker-style TPM-backed volume."""

import pytest

from repro.victim.bitlocker import (
    SECTOR_BYTES,
    BitLockerVolume,
    SimulatedTpm,
    decrypt_with_stolen_fvek,
)


class TestTpm:
    def test_seal_unseal_roundtrip(self):
        tpm = SimulatedTpm(serial=1)
        secret = b"volume master key material!!" + bytes(4)
        assert tpm.unseal(tpm.seal(secret)) == secret

    def test_sealing_is_tpm_bound(self):
        a, b = SimulatedTpm(serial=1), SimulatedTpm(serial=2)
        secret = bytes(range(32))
        assert b.unseal(a.seal(secret)) != secret

    def test_sealed_blob_hides_secret(self):
        tpm = SimulatedTpm(serial=3)
        secret = bytes(32)
        assert tpm.seal(secret) != secret


class TestVolumeLifecycle:
    def test_mount_exposes_schedule(self):
        volume = BitLockerVolume(SimulatedTpm(1), seed=5)
        state = volume.mount()
        assert len(state.fvek_schedule) == 176  # AES-128 expanded schedule
        assert state.fvek == state.fvek_schedule[:16]

    def test_unmount_clears_state(self):
        volume = BitLockerVolume(SimulatedTpm(1), seed=5)
        volume.mount()
        volume.unmount()
        assert not volume.is_mounted
        with pytest.raises(RuntimeError):
            volume.encrypt_sector(0, bytes(SECTOR_BYTES))

    def test_sector_roundtrip(self):
        volume = BitLockerVolume(SimulatedTpm(1), seed=5)
        volume.mount()
        plaintext = bytes(range(256)) * 2
        for sector in (0, 7, 12345):
            assert volume.decrypt_sector(sector, volume.encrypt_sector(sector, plaintext)) == plaintext

    def test_iv_varies_by_sector(self):
        volume = BitLockerVolume(SimulatedTpm(1), seed=5)
        volume.mount()
        plaintext = b"\x00" * SECTOR_BYTES
        assert volume.encrypt_sector(0, plaintext) != volume.encrypt_sector(1, plaintext)

    def test_validation(self):
        volume = BitLockerVolume(SimulatedTpm(1), seed=5)
        volume.mount()
        with pytest.raises(ValueError):
            volume.encrypt_sector(0, b"short")


class TestColdBootAgainstBitLocker:
    def test_stolen_fvek_decrypts_without_tpm(self):
        volume = BitLockerVolume(SimulatedTpm(1), seed=6)
        state = volume.mount()
        ciphertext = volume.encrypt_sector(3, b"Q" * SECTOR_BYTES)
        # The attacker has only the FVEK from the memory dump.
        assert decrypt_with_stolen_fvek(state.fvek, 3, ciphertext) == b"Q" * SECTOR_BYTES

    def test_fvek_recovered_from_scrambled_ddr4_dump(self):
        """§II-B's warning, end to end: TPM or not, the mounted volume's
        AES-128 schedule is in scrambled DRAM and the attack finds it."""
        from repro.attack.aes_search import AesKeySearch
        from repro.attack.keymine import keys_matrix, mine_scrambler_keys
        from repro.attack.coldboot import TransferConditions, cold_boot_transfer
        from repro.victim.machine import TABLE_I_MACHINES, Machine
        from repro.victim.workload import synthesize_memory

        mem = 2 << 20
        victim = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=mem, machine_id=81)
        contents, _ = synthesize_memory(mem - 64 * 1024, zero_fraction=0.35, seed=81)
        victim.write(64 * 1024, contents)
        volume = BitLockerVolume(SimulatedTpm(7), seed=7)
        state = volume.mount()
        victim.write((1 << 20) + 23, state.fvek_schedule)  # driver cache

        attacker = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=mem, machine_id=82)
        dump = cold_boot_transfer(
            victim, attacker, TransferConditions(temperature_c=-25.0, transfer_seconds=5.0)
        )
        candidates = mine_scrambler_keys(dump)
        search = AesKeySearch(keys_matrix(candidates), key_bits=128)
        recovered = search.recover_keys(dump)
        assert state.fvek in [r.master_key for r in recovered]

    def test_unmounted_volume_is_safe(self):
        """The §II-B mitigation that *does* work: unmount erases the key."""
        from repro.attack.keyfind import find_aes_keys
        from repro.util.rng import SplitMix64

        volume = BitLockerVolume(SimulatedTpm(9), seed=9)
        volume.mount()
        volume.unmount()
        # RAM after unmount: the schedule was never written / was erased.
        memory = SplitMix64(4).next_bytes(64 * 512)
        assert find_aes_keys(memory, key_bits=128) == []
