"""End-to-end reproductions of the paper's headline results.

These are the slowest tests in the suite (a few seconds each): they run
the complete physical story — mount volume, freeze, transplant, dump,
mine, search, recover — on scaled-down machines.
"""

import pytest

from repro.analysis.entropy import randomness_report
from repro.attack.coldboot import TransferConditions, cold_boot_transfer
from repro.attack.keyfind import find_aes_keys, unique_master_keys
from repro.attack.pipeline import AttackConfig, Ddr4ColdBootAttack
from repro.victim.machine import TABLE_I_MACHINES, Machine
from repro.victim.veracrypt import VeraCryptVolume
from repro.victim.workload import synthesize_memory

MEM = 2 << 20  # 2 MiB machines keep these tests fast


def prepared_victim(spec_name: str = "i5-6400", machine_id: int = 1, protection: str = "scrambler"):
    victim = Machine(
        TABLE_I_MACHINES[spec_name], memory_bytes=MEM, machine_id=machine_id, protection=protection
    )
    contents, _ = synthesize_memory(MEM - 64 * 1024, zero_fraction=0.35, seed=machine_id)
    victim.write(64 * 1024, contents)
    volume = victim.mount_encrypted_volume(b"correct horse battery", key_table_address=(1 << 20) + 37)
    return victim, volume


class TestDdr4ColdBootAttack:
    """§III-C: the full DDR4 disk-encryption-key recovery."""

    def test_master_key_recovered_and_decrypts_volume(self):
        victim, volume = prepared_victim()
        attacker = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=MEM, machine_id=2)
        dump = cold_boot_transfer(
            victim, attacker, TransferConditions(temperature_c=-25.0, transfer_seconds=5.0)
        )
        master = Ddr4ColdBootAttack().recover_xts_master_key(dump)
        assert master == volume.master_key
        # The recovered key alone decrypts the volume's sectors.
        ciphertext = volume.encrypt_sector(7, b"\x3c" * 512)
        assert VeraCryptVolume(master).decrypt_sector(7, ciphertext) == b"\x3c" * 512

    def test_same_machine_reboot_attack(self):
        """The analysis-motherboard variant: reboot the same machine."""
        victim, volume = prepared_victim(machine_id=5)
        victim.shutdown()
        victim.modules[0].set_temperature(-25.0)
        victim.wait(2.0)
        victim.boot()  # new scrambler seed; old contents still in DRAM
        dump = victim.bare_metal_dump()
        master = Ddr4ColdBootAttack().recover_xts_master_key(dump)
        assert master == volume.master_key

    def test_sticky_bios_makes_attack_trivial(self):
        """§III-B: vendors that never reset the seed reuse all keys, so a
        reboot dump descrambles to plaintext directly."""
        spec = type(TABLE_I_MACHINES["i5-6400"])(
            "sticky", "skylake", "DDR4", "Q3", bios_resets_seed=False
        )
        victim = Machine(spec, memory_bytes=MEM, machine_id=6)
        volume = victim.mount_encrypted_volume(b"pw", key_table_address=(1 << 20) + 3)
        victim.shutdown()
        victim.boot()
        dump = victim.bare_metal_dump()
        # Same keys after reboot: the key table reads back as plaintext.
        matches = unique_master_keys(find_aes_keys(dump, key_bits=256))
        assert volume.master_key[:32] in matches
        assert volume.master_key[32:] in matches


class TestEncryptedMemoryDefence:
    """§IV: strong stream ciphers shut the attack down."""

    def test_chacha8_memory_defeats_cold_boot(self):
        victim, _ = prepared_victim(machine_id=7, protection="chacha8")
        attacker = Machine(
            TABLE_I_MACHINES["i5-6600K"], memory_bytes=MEM, machine_id=8, protection="chacha8"
        )
        dump = cold_boot_transfer(victim, attacker, TransferConditions(transfer_seconds=0.0))
        report = Ddr4ColdBootAttack(AttackConfig(key_scan_limit_bytes=None)).run(dump)
        assert report.recovered_keys == []
        # No litmus-passing structure beyond chance: candidate keys mined
        # from an encrypted dump are (at most) degenerate constants.
        assert len(report.candidate_keys) < 5

    def test_encrypted_dump_is_indistinguishable_from_random(self):
        victim, _ = prepared_victim(machine_id=9, protection="chacha8")
        # Skip the first 64 KiB: it holds never-written ground-state
        # stripes (unwritten cells are not encrypted — nothing is there).
        raw = victim.modules[0].dump()[64 * 1024 :]
        assert randomness_report(raw).looks_random()

    def test_scrambled_dump_is_not_random(self):
        """The contrast: scrambler output leaks structure (Figure 3d)."""
        victim, _ = prepared_victim(machine_id=10, protection="scrambler")
        raw = victim.modules[0].dump()
        report = randomness_report(raw)
        # Byte histogram may look fine, but block-level correlation exists:
        from repro.analysis.correlation import duplicate_block_stats
        from repro.dram.image import MemoryImage

        stats = duplicate_block_stats(MemoryImage(raw))
        assert stats.duplicate_fraction > 0.1  # repeated keys expose zeros


class TestCrossGenerationBaseline:
    def test_plaintext_ddr2_era_attack(self):
        """Pre-scrambler machines fall to the classic Halderman scan."""
        victim, volume = prepared_victim(machine_id=11, protection="none")
        attacker = Machine(
            TABLE_I_MACHINES["i5-6400"], memory_bytes=MEM, machine_id=12, protection="none"
        )
        dump = cold_boot_transfer(
            victim, attacker, TransferConditions(temperature_c=-25.0, transfer_seconds=3.0)
        )
        masters = unique_master_keys(find_aes_keys(dump, key_bits=256), min_votes=2)
        assert volume.master_key[:32] in masters
        assert volume.master_key[32:] in masters
