"""End-to-end attacks on platform variants the paper calls out.

* Dual-channel Skylake: "8192 for a dual channel system" (§III-C) —
  the key pool doubles and the attack still works;
* NVDIMM with strong encryption: §V's closing recommendation — the one
  configuration in the paper that actually shuts the attack down on
  persistent memory.
"""

import pytest

from repro.attack.coldboot import TransferConditions, cold_boot_transfer
from repro.attack.pipeline import AttackConfig, Ddr4ColdBootAttack
from repro.dram.nvdimm import NvdimmModule
from repro.victim.machine import TABLE_I_MACHINES, Machine, MachineSpec
from repro.victim.workload import synthesize_memory

MEM = 2 << 20


def dual_channel_spec(name: str) -> MachineSpec:
    return MachineSpec(name, "skylake", "DDR4", "Q3, 2015", channels=2)


class TestDualChannelAttack:
    def test_key_pool_doubles(self):
        """§III-C: 4096 keys per channel -> 8192 on a dual-channel box."""
        machine = Machine(dual_channel_spec("dual"), memory_bytes=MEM, machine_id=91)
        from repro.attack.coldboot import reverse_cold_boot
        from repro.analysis.correlation import keystream_key_census

        keystream = reverse_cold_boot(machine)
        assert keystream_key_census(keystream).n_distinct == 8192

    def test_master_key_recovery_dual_channel(self):
        """The full attack across an interleaved two-DIMM dump.

        Both frozen DIMMs are transplanted; the attacker's machine is
        the same dual-channel generation, so the interleaving lines up
        and the dump behaves as one address space with 8192 keys.
        """
        victim = Machine(dual_channel_spec("dual-v"), memory_bytes=MEM, machine_id=92)
        contents, _ = synthesize_memory(MEM - 64 * 1024, zero_fraction=0.35, seed=92)
        victim.write(64 * 1024, contents)
        volume = victim.mount_encrypted_volume(b"pw", key_table_address=(1 << 20) + 41)

        attacker = Machine(dual_channel_spec("dual-a"), memory_bytes=MEM, machine_id=93)
        conditions = TransferConditions(temperature_c=-25.0, transfer_seconds=5.0)
        # Move both channels' modules.
        victim.modules[0].set_temperature(conditions.temperature_c)
        victim.modules[1].set_temperature(conditions.temperature_c)
        victim.shutdown()
        frozen0 = victim.remove_module(0)
        frozen1 = victim.remove_module(1)
        for module in (frozen0, frozen1):
            module.advance_time(conditions.transfer_seconds)
        attacker.shutdown()
        attacker.remove_module(0)
        attacker.remove_module(1)
        attacker.install_module(frozen0, 0)
        attacker.install_module(frozen1, 1)
        attacker.boot()
        dump = attacker.bare_metal_dump()

        master = Ddr4ColdBootAttack().recover_xts_master_key(dump)
        assert master == volume.master_key


class TestEncryptedNvdimm:
    def test_section_v_recommendation_holds(self):
        """NVDIMM + ChaCha8 encryption: no decay to hide behind, and the
        attack still comes away with nothing — the paper's §V point."""
        victim = Machine(
            TABLE_I_MACHINES["i5-6400"], memory_bytes=MEM, machine_id=94,
            protection="chacha8",
        )
        victim.shutdown()
        victim.remove_module(0)
        victim.install_module(NvdimmModule(MEM, serial=55), 0)
        victim.boot()
        contents, _ = synthesize_memory(MEM - 64 * 1024, zero_fraction=0.35, seed=94)
        victim.write(64 * 1024, contents)
        victim.mount_encrypted_volume(b"pw", key_table_address=(1 << 20) + 5)

        attacker = Machine(
            TABLE_I_MACHINES["i5-6600K"], memory_bytes=MEM, machine_id=95,
            protection="chacha8",
        )
        # Warm, slow, lossless transfer — the NVDIMM worst case.
        dump = cold_boot_transfer(
            victim, attacker, TransferConditions(temperature_c=20.0, transfer_seconds=300.0)
        )
        report = Ddr4ColdBootAttack(AttackConfig(key_scan_limit_bytes=None)).run(dump)
        assert report.recovered_keys == []

    def test_scrambled_nvdimm_falls(self):
        """The §V contrast: the same NVDIMM behind only a scrambler falls
        to the same warm lossless attack."""
        victim = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=MEM, machine_id=96)
        victim.shutdown()
        victim.remove_module(0)
        victim.install_module(NvdimmModule(MEM, serial=56), 0)
        victim.boot()
        contents, _ = synthesize_memory(MEM - 64 * 1024, zero_fraction=0.35, seed=96)
        victim.write(64 * 1024, contents)
        volume = victim.mount_encrypted_volume(b"pw", key_table_address=(1 << 20) + 5)
        attacker = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=MEM, machine_id=97)
        dump = cold_boot_transfer(
            victim, attacker, TransferConditions(temperature_c=20.0, transfer_seconds=300.0)
        )
        master = Ddr4ColdBootAttack().recover_xts_master_key(dump)
        assert master == volume.master_key
