"""Attack-model boundary conditions from §III-C.

The paper's attack model imposes one hardware constraint: "the attacker
must use a CPU that is the same generation as the one being attacked",
because physical-address-to-key mappings differ across generations.
These tests demonstrate both sides of that constraint on the simulator.
"""

import numpy as np

from repro.attack.keymine import mine_scrambler_keys
from repro.dram.address import DramAddressMap
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


def _zero_heavy_plaintext(n_blocks: int, seed: int = 0) -> bytes:
    """Zero blocks at every even index: with two full 4096-block index
    periods, each even key index is exposed exactly twice — recurrence
    the same-generation miner sees and the cross-generation one loses."""
    rng = SplitMix64(seed)
    plain = bytearray(rng.next_bytes(n_blocks * 64))
    for b in range(0, n_blocks, 2):
        plain[b * 64 : (b + 1) * 64] = bytes(64)
    return bytes(plain)


def _hypothetical_next_gen_map() -> DramAddressMap:
    """A fictional successor generation: key-index bits shifted by one."""
    return DramAddressMap(name="next-gen", key_index_bits=tuple(range(7, 19)))


class TestSameGenerationRequired:
    def test_same_generation_keys_collapse_to_4096(self):
        """Matching maps: the double-scrambled dump reuses 4096 keys."""
        n_blocks = 2 * 4096
        plain = _zero_heavy_plaintext(n_blocks)
        victim = Ddr4Scrambler(boot_seed=1)
        attacker = Ddr4Scrambler(boot_seed=2)
        raw = victim.scramble_range(0, plain)
        dump = MemoryImage(attacker.descramble_range(0, raw))
        candidates = mine_scrambler_keys(dump, tolerance_bits=0, scan_limit_bytes=None)
        # Every exposed combined key K_v ^ K_a recurs (count 2): the
        # pool stays bounded by the generation's 4096 keys.
        assert len(candidates) <= 2048 + 64
        assert max(c.count for c in candidates) >= 2

    def test_mismatched_generation_key_pool_explodes(self):
        """Mismatched maps: combined keys stop recurring, mining degrades.

        The victim's key index comes from address bits 6..17, the
        attacker's from 7..18 — so K_v(idx_v) ^ K_a(idx_a) varies with
        *both* indices and the effective pool squares, exactly why the
        paper requires a same-generation dump machine.
        """
        n_blocks = 2 * 4096
        plain = _zero_heavy_plaintext(n_blocks)
        victim = Ddr4Scrambler(boot_seed=1)
        attacker = Ddr4Scrambler(boot_seed=2, address_map=_hypothetical_next_gen_map())
        raw = victim.scramble_range(0, plain)
        dump = MemoryImage(attacker.descramble_range(0, raw))
        candidates = mine_scrambler_keys(dump, tolerance_bits=0, scan_limit_bytes=None)
        # Every zero block now exposes a unique combined value: the
        # effective pool doubles and nothing recurs, so the miner's
        # frequency ranking has nothing to work with.
        singleton_fraction = sum(1 for c in candidates if c.count == 1) / max(len(candidates), 1)
        assert len(candidates) > 3500
        assert singleton_fraction > 0.95

    def test_mismatched_keys_still_pass_litmus(self):
        """§III-B: XORs of structured keys remain litmus-passing, so the
        failure mode is pool explosion, not litmus blindness."""
        from repro.attack.litmus import passes_key_litmus
        from repro.util.bits import xor_bytes

        victim = Ddr4Scrambler(boot_seed=1)
        attacker = Ddr4Scrambler(boot_seed=2, address_map=_hypothetical_next_gen_map())
        combined = xor_bytes(victim.key_for(0, 100), attacker.key_for(0, 2000))
        assert passes_key_litmus(combined)
