"""Smoke tests: every example compiles; the fast ones run end to end."""

import os
import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
SRC_DIR = Path(__file__).parent.parent / "src"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "disk_key_recovery.py", "ddr3_vs_ddr4.py"} <= names
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(script):
    py_compile.compile(str(script), doraise=True)


def _run(script: Path, tmp_path, timeout: int = 240) -> str:
    # The example runs from tmp_path, so a relative PYTHONPATH=src from
    # the invoking shell would no longer resolve; pin the absolute path.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs(tmp_path):
    out = _run(Path("examples/quickstart.py").absolute(), tmp_path)
    assert "true key for 0x9000 among candidates: True" in out


def test_regenerate_figures_runs(tmp_path):
    _run(Path("examples/regenerate_figures.py").absolute(), tmp_path)
    assert (tmp_path / "figure6_latency_vs_load.svg").exists()
    assert len(list(tmp_path.glob("figure3_*.pgm"))) == 5


def test_ddr3_vs_ddr4_runs(tmp_path):
    out = _run(Path("examples/ddr3_vs_ddr4.py").absolute(), tmp_path)
    assert "universal key: True" in out
    assert "universal key: False" in out
