"""§IV-A/B extensions — measured overlap under real traffic, and the
SGX-class trade-off table.

Figure 6 analyses an idealised worst-case burst; these benches drive
the *command-level* DDR4 channel simulator with streaming, random and
bursty traffic and measure actual exposed latency per engine, then
print the §IV-A security/performance comparison against an SGX-class
memory encryption engine.
"""

import pytest

from repro.dram.address import address_map_for
from repro.dram.bus import DdrChannelSimulator
from repro.engine.overlap import overlap_comparison, simulate_overlap
from repro.engine.sgx_model import security_performance_table
from repro.engine.traffic import bursty_reads, random_reads, streaming_reads


def fresh_simulator() -> DdrChannelSimulator:
    return DdrChannelSimulator(address_map_for("skylake"))


def test_overlap_across_traffic_shapes(benchmark):
    """ChaCha8 stays fully hidden under every traffic shape; AES-128
    exposes only under saturating bursts, and then only ~1 ns."""

    def sweep():
        traces = {
            "streaming": streaming_reads(256, 5.0),
            "random": random_reads(256, 20.0, 1 << 26, seed=3),
            "bursty(18)": bursty_reads(8, 18, 150.0, 1 << 24, seed=3),
        }
        table = {}
        for name, reads in traces.items():
            table[name] = {
                r.engine: r for r in overlap_comparison(reads, fresh_simulator)
            }
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nmeasured exposed latency (mean/max ns) per engine and traffic:")
    for trace, results in table.items():
        sample = next(iter(results.values()))
        print(f"  {trace:12s} (row-hit {sample.row_hit_rate:4.0%}, "
              f"bus util {sample.bus_utilisation:4.0%})")
        for engine, result in results.items():
            print(f"    {engine:10s} mean {result.mean_exposed_ns:5.2f}  "
                  f"max {result.max_exposed_ns:5.2f}  "
                  f"hidden {result.hidden_fraction:4.0%}")
    for trace, results in table.items():
        assert results["ChaCha8"].max_exposed_ns == 0.0, trace
    assert table["bursty(18)"]["AES-128"].max_exposed_ns < 3.0
    assert table["streaming"]["AES-128"].max_exposed_ns == 0.0


def test_sgx_comparison_table(benchmark):
    """§IV-A: the scheme trades integrity/replay protection for speed."""
    rows = benchmark.pedantic(security_performance_table, rounds=1, iterations=1)
    print("\nscheme comparison (read path):")
    print(f"{'scheme':44s} {'exposed':>9s} {'slowdown':>9s} {'C':>2s} {'I':>2s} {'R':>2s}")
    for row in rows:
        print(f"{row.scheme:44s} {row.exposed_latency_ns:7.1f}ns {row.slowdown:8.2f}x "
              f"{'y' if row.confidentiality else 'n':>2s} "
              f"{'y' if row.integrity else 'n':>2s} "
              f"{'y' if row.replay_protection else 'n':>2s}")
    paper = next(r for r in rows if "this paper" in r.scheme)
    assert paper.slowdown == 1.0
    sgx_worst = max(r.slowdown for r in rows if r.integrity)
    assert 10.0 < sgx_worst < 13.0  # SCONE's "up to 12x"


def test_channel_simulator_throughput(benchmark):
    """Raw scheduling rate of the command-level simulator."""
    reads = random_reads(2048, 5.0, 1 << 26, seed=9)

    def run():
        simulator = fresh_simulator()
        simulator.schedule(list(reads))
        return simulator.bus_utilisation

    utilisation = benchmark(run)
    assert 0.0 < utilisation <= 1.0
