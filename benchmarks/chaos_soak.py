"""Composed chaos soak: every failure mode at once, crash-only invariants.

The watchdog-runtime tentpole claims the attack pipeline is *crash-only*:
whatever combination of worker crashes, kills, hangs, data corruption,
signals, deadlines, and resource denial lands mid-scan, a run either

* **completes** with recovered keys byte-identical to a clean run, or
* **stops resumable** — journalled shards on disk, a resume run finishes
  the scan and converges to the same byte-identical keys.

``python -m benchmarks.chaos_soak`` soaks that claim: each iteration
composes a deterministic fault stack (rotating through eight scenarios so
every mode is exercised several times), runs the real
:func:`~repro.attack.parallel.resilient_recover_keys` path against it,
and checks the invariants plus a shared-memory leak sweep.  The result is
``ROBUST_chaos.json`` (schema ``robust-chaos/v1``), validated by
:func:`validate_chaos_record` before it is written so schema drift fails
the soak instead of poisoning downstream tooling.  ``--quick`` runs one
scenario rotation for CI smoke.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.attack.parallel import resilient_recover_keys
from repro.attack.sweep import synthetic_dump
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.resources import ResourcePolicy
from repro.resilience.retry import RetryPolicy
from repro.resilience.shutdown import GracefulShutdown
from repro.resilience.watchdog import WatchdogConfig

#: Schema tag for downstream consumers of the JSON artifact.
CHAOS_SCHEMA = "robust-chaos/v1"

#: One full rotation covers every failure mode; the default soak runs
#: seven rotations (56 iterations — comfortably past the 50-iteration
#: acceptance floor).
SCENARIOS = (
    "crash-retry",
    "kill-rebuild",
    "hang-watchdog",
    "signal-drain",
    "deadline-expiry",
    "shm-denied",
    "serial-degraded",
    "kitchen-sink",
)

DEFAULT_ITERATIONS = 56
QUICK_ITERATIONS = len(SCENARIOS)
N_SHARDS = 4

_ITERATION_FIELDS = {
    "iteration": int,
    "scenario": str,
    "fault_kinds": list,
    "workers": int,
    "backend": str,
    "complete_first_pass": bool,
    "interrupted": bool,
    "deadline_expired": bool,
    "stall_kills": int,
    "pool_rebuilds": int,
    "degraded_to_serial": bool,
    "journaled_shards": int,
    "resumed_shards": int,
    "resume_ran": bool,
    "keys_byte_identical": bool,
    "seconds": float,
    "violations": list,
}

_ACCEPTANCE_BOOLS = (
    "zero_violations",
    "watchdog_fired",
    "drain_exercised",
    "deadline_exercised",
    "degradation_exercised",
    "all_byte_identical",
)


def _policy() -> RetryPolicy:
    return RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05)


def _keys_hex(report) -> list[str]:
    return sorted(r.master_key.hex() for r in report.recovered)


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover — host without tmpfs
        return set()


def _journaled_shards(path: Path) -> int:
    if not path.exists():
        return 0
    count = 0
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a scripted journal fault may leave a rotten line
        if record.get("type") == "shard":
            count += 1
    return count


class _JournalWatcher:
    """Fires a graceful stop once the first shard lands in the journal.

    The in-process analogue of SIGTERM-ing a CLI run mid-scan: polling
    the checkpoint file guarantees the stop arrives *after* some work is
    journalled and (usually) before the scan finishes, so the drain path
    actually has in-flight shards to drain.
    """

    def __init__(self, journal: Path, stop: GracefulShutdown) -> None:
        self.journal = journal
        self.stop = stop
        self.done = threading.Event()
        self.thread = threading.Thread(target=self._watch, daemon=True)

    def _watch(self) -> None:
        while not self.done.is_set():
            if _journaled_shards(self.journal) >= 1:
                self.stop.request("chaos-signal")
                return
            self.done.wait(0.02)

    def __enter__(self) -> "_JournalWatcher":
        self.thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.done.set()
        self.thread.join(timeout=5.0)


def _build_scenario(scenario: str, rng: random.Random, offsets: list[int], tmp: Path) -> dict:
    """Compose one iteration's fault stack.

    Destructive data faults (corrupt) only ever target ``offsets[1:]`` —
    the shards that carry no planted key material — so a *complete* run
    is always held to the byte-identical bar.  Process faults (crash,
    kill, hang, poison) fire on the first attempt only; the retry,
    rebuild, and stall-kill paths are what absorb them.
    """
    faults: list[tuple[int, FaultSpec]] = []
    spec = {
        "workers": 2,
        "resource_policy": None,
        "watchdog": None,
        "deadline": None,
        "signal": False,
    }

    def add(offset: int, kind: str, **kwargs) -> None:
        faults.append((offset, FaultSpec(kind=kind, first_attempts=1, **kwargs)))

    empty = offsets[1:]
    if scenario == "crash-retry":
        spec["workers"] = rng.choice((1, 2))
        add(rng.choice(offsets), "crash")
        add(rng.choice(empty), "corrupt", corrupt_bits=64)
    elif scenario == "kill-rebuild":
        add(rng.choice(offsets), "kill")
        add(rng.choice(empty), "bitrot", corrupt_rate=0.01)
    elif scenario == "hang-watchdog":
        add(rng.choice(offsets), "hang", hang_seconds=60.0)
        spec["watchdog"] = WatchdogConfig(stall_timeout_s=2.0, poll_interval_s=0.1)
    elif scenario == "signal-drain":
        spec["signal"] = True
    elif scenario == "deadline-expiry":
        spec["deadline"] = rng.uniform(0.8, 1.5)
    elif scenario == "shm-denied":
        spec["resource_policy"] = ResourcePolicy(allow_shm=False, file_directory=str(tmp))
        add(rng.choice(offsets), "crash")
    elif scenario == "serial-degraded":
        spec["resource_policy"] = ResourcePolicy(allow_shm=False, allow_file=False)
        add(rng.choice(empty), "corrupt", corrupt_bits=64)
    elif scenario == "kitchen-sink":
        spec["resource_policy"] = ResourcePolicy(allow_shm=False, file_directory=str(tmp))
        spec["watchdog"] = WatchdogConfig(stall_timeout_s=2.0, poll_interval_s=0.1)
        add(offsets[0], "poison", corrupt_bits=16)
        add(offsets[1], "hang", hang_seconds=60.0)
        add(offsets[2], "crash")
    else:  # pragma: no cover — scenario list and builder must agree
        raise ValueError(f"unknown scenario {scenario!r}")

    spec["fault_plan"] = FaultPlan(faults=tuple(faults), seed=rng.randrange(1 << 30)) if faults else None
    return spec


def soak_iteration(
    iteration: int, scenario: str, rng: random.Random,
    dump, offsets: list[int], baseline: list[str], tmp: Path,
) -> dict:
    """Run one composed-fault iteration and check the crash-only bar."""
    journal = tmp / f"iter{iteration:03d}.checkpoint.jsonl"
    spec = _build_scenario(scenario, rng, offsets, tmp)
    plan = spec["fault_plan"]
    violations: list[str] = []
    shm_before = _shm_entries()
    start = time.perf_counter()

    stop = GracefulShutdown() if spec["signal"] else None

    def run(fault_plan, active_stop):
        return resilient_recover_keys(
            dump,
            workers=spec["workers"],
            n_shards=N_SHARDS,
            retry_policy=_policy(),
            checkpoint=journal,
            resume=True,
            fault_plan=fault_plan,
            deadline=spec["deadline"],
            stop=active_stop,
            watchdog=spec["watchdog"],
            resource_policy=spec["resource_policy"],
        )

    try:
        if stop is not None:
            with _JournalWatcher(journal, stop):
                report = run(plan, stop)
        else:
            report = run(plan, None)
    except Exception as exc:  # crash-only: nothing may escape
        return {
            "iteration": iteration,
            "scenario": scenario,
            "fault_kinds": sorted({s.kind for _, s in (plan.faults if plan else ())}),
            "workers": spec["workers"],
            "backend": "unknown",
            "complete_first_pass": False,
            "interrupted": False,
            "deadline_expired": False,
            "stall_kills": 0,
            "pool_rebuilds": 0,
            "degraded_to_serial": False,
            "journaled_shards": _journaled_shards(journal),
            "resumed_shards": 0,
            "resume_ran": False,
            "keys_byte_identical": False,
            "seconds": time.perf_counter() - start,
            "violations": [f"exception escaped the runtime: {exc!r}"],
        }

    if report.quarantined_offsets:
        violations.append(
            f"transient faults quarantined shards {report.quarantined_offsets}"
        )

    resume_ran = False
    resumed_shards = report.resumed_shards
    if report.complete:
        keys_identical = _keys_hex(report) == baseline
        if not keys_identical:
            violations.append("complete run diverged from the clean baseline")
    else:
        # Stopped early: the run must be resumable, and the resume must
        # land byte-identical on the baseline.
        if not report.unscanned_offsets:
            violations.append("incomplete run left no unscanned shards to resume")
        if not (report.interrupted or report.deadline_expired):
            violations.append("incomplete run claims neither interrupt nor deadline")
        resume_ran = True
        resumed = resilient_recover_keys(
            dump, workers=2, n_shards=N_SHARDS, retry_policy=_policy(),
            checkpoint=journal, resume=True,
        )
        resumed_shards = resumed.resumed_shards
        keys_identical = _keys_hex(resumed) == baseline
        if not resumed.complete:
            violations.append("resume run did not complete the scan")
        if not keys_identical:
            violations.append("resume run diverged from the clean baseline")

    leaked = _shm_entries() - shm_before
    if leaked:
        violations.append(f"leaked shared-memory segments: {sorted(leaked)}")

    return {
        "iteration": iteration,
        "scenario": scenario,
        "fault_kinds": sorted({s.kind for _, s in (plan.faults if plan else ())}),
        "workers": spec["workers"],
        "backend": report.resource_backend,
        "complete_first_pass": report.complete,
        "interrupted": report.interrupted,
        "deadline_expired": report.deadline_expired,
        "stall_kills": report.ledger.stall_kills,
        "pool_rebuilds": report.ledger.pool_rebuilds,
        "degraded_to_serial": report.ledger.degraded_to_serial,
        "journaled_shards": _journaled_shards(journal),
        "resumed_shards": resumed_shards,
        "resume_ran": resume_ran,
        "keys_byte_identical": keys_identical,
        "seconds": time.perf_counter() - start,
        "violations": violations,
    }


def _acceptance(iterations: list[dict]) -> dict:
    """The claims ``ROBUST_chaos.json`` exists to certify, as booleans."""
    return {
        "iterations_run": len(iterations),
        "zero_violations": all(not it["violations"] for it in iterations),
        # Each degradation layer must actually have fired during the soak
        # — a soak that never stalls a worker proves nothing about the
        # watchdog.
        "watchdog_fired": any(it["stall_kills"] > 0 for it in iterations),
        "drain_exercised": any(it["interrupted"] for it in iterations),
        "deadline_exercised": any(it["deadline_expired"] for it in iterations),
        "degradation_exercised": any(
            it["degraded_to_serial"] or it["backend"] == "file" for it in iterations
        ),
        "all_byte_identical": all(it["keys_byte_identical"] for it in iterations),
    }


def chaos_soak(iterations: int = DEFAULT_ITERATIONS, seed: int = 5, on_progress=None) -> dict:
    """Full soak: composed-fault iterations plus the acceptance digest."""
    dump, master, _ = synthetic_dump(bit_error_rate=0.0, seed=seed)
    clean = resilient_recover_keys(dump, workers=1, n_shards=N_SHARDS, retry_policy=_policy())
    baseline = _keys_hex(clean)
    truth = {master[:32].hex(), master[32:].hex()}
    if not truth <= set(baseline):
        raise RuntimeError("clean baseline failed to recover the planted master key")
    offsets = sorted(o.shard_offset for o in clean.ledger.completed)

    results: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="chaos-soak-") as tmp_name:
        tmp = Path(tmp_name)
        for iteration in range(iterations):
            scenario = SCENARIOS[iteration % len(SCENARIOS)]
            rng = random.Random((seed << 20) ^ iteration)
            entry = soak_iteration(iteration, scenario, rng, dump, offsets, baseline, tmp)
            results.append(entry)
            if on_progress is not None:
                on_progress(entry)

    record = {
        "schema": CHAOS_SCHEMA,
        "seed": seed,
        "n_shards": N_SHARDS,
        "baseline_keys": len(baseline),
        "repro_command": (
            f"PYTHONPATH=src python -m benchmarks.chaos_soak "
            f"--seed {seed} --iterations {iterations}"),
        "iterations": results,
        "acceptance": _acceptance(results),
    }
    errors = validate_chaos_record(record)
    if errors:
        raise ValueError("chaos soak produced an invalid record: " + "; ".join(errors))
    return record


def validate_chaos_record(record: dict) -> list[str]:
    """Schema check for a ``robust-chaos/v1`` record; returns problems."""
    errors: list[str] = []
    if record.get("schema") != CHAOS_SCHEMA:
        errors.append(f"schema is {record.get('schema')!r}, want {CHAOS_SCHEMA!r}")
    for field in ("seed", "n_shards", "baseline_keys"):
        if not isinstance(record.get(field), int):
            errors.append(f"{field} must be an int")
    if not isinstance(record.get("repro_command"), str):
        errors.append("repro_command must be a string")
    iterations = record.get("iterations")
    if not isinstance(iterations, list) or not iterations:
        return errors + ["iterations must be a non-empty list"]
    for index, entry in enumerate(iterations):
        for field, kind in _ITERATION_FIELDS.items():
            value = entry.get(field)
            ok = isinstance(value, kind) or (kind is float and isinstance(value, int))
            if kind is int and isinstance(value, bool):
                ok = False
            if not ok:
                errors.append(f"iterations[{index}].{field} must be {kind.__name__}")
        if entry.get("scenario") not in SCENARIOS:
            errors.append(f"iterations[{index}].scenario is not a known scenario")
        for violation in entry.get("violations", ()):
            if not isinstance(violation, str):
                errors.append(f"iterations[{index}] has a non-string violation")
    acceptance = record.get("acceptance")
    if not isinstance(acceptance, dict):
        errors.append("acceptance must be a dict")
    else:
        if not isinstance(acceptance.get("iterations_run"), int):
            errors.append("acceptance.iterations_run must be an int")
        for field in _ACCEPTANCE_BOOLS:
            if not isinstance(acceptance.get(field), bool):
                errors.append(f"acceptance.{field} must be a bool")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="ROBUST_chaos.json")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument("--quick", action="store_true",
                        help="one scenario rotation for CI smoke runs")
    args = parser.parse_args(argv)
    iterations = args.iterations or (QUICK_ITERATIONS if args.quick else DEFAULT_ITERATIONS)

    def progress(entry: dict) -> None:
        status = "ok" if not entry["violations"] else "VIOLATION"
        phase = ("complete" if entry["complete_first_pass"]
                 else f"resumed({entry['resumed_shards']})")
        print(
            f"[{entry['iteration'] + 1:3d}] {entry['scenario']:<16} "
            f"{phase:<12} backend={entry['backend']:<6} "
            f"stalls={entry['stall_kills']} {entry['seconds']:5.1f}s {status}",
            flush=True,
        )

    record = chaos_soak(iterations=iterations, seed=args.seed, on_progress=progress)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    acceptance = record["acceptance"]
    print(f"wrote {args.output}: {acceptance}")
    ok = all(acceptance[field] for field in _ACCEPTANCE_BOOLS)
    if not ok:
        print(f"soak FAILED — reproduce with: {record['repro_command']}",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
