"""Benchmarks for the paper reproduction.

``bench_*.py`` modules are pytest-benchmark suites regenerating the
paper's tables and figures; :mod:`benchmarks.harness` is the standalone
scan-performance harness (``python benchmarks/harness.py``) that tracks
the perf trajectory of the sharded AES-schedule scan, with
:mod:`benchmarks.legacy_scan` preserving the pre-optimisation scan as
its baseline.
"""
