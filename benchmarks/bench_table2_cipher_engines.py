"""Table II — cipher engine performance at 45 nm, plus the Figure 5
zero-exposed-latency analysis it feeds.

Regenerates the table (max frequency, cycles per 64 B, pipeline delay)
from the structural engine model, checks it byte-for-byte against the
published numbers, and derives the §IV-C viability verdicts for every
JEDEC CAS latency.  Also times the *functional* keystream generators —
our software stand-ins for the RTL — for completeness.
"""

import pytest

from repro.controller.encrypted import StreamCipherEngine
from repro.dram.timing import JEDEC_CAS_LATENCIES_NS, MIN_CAS_LATENCY_NS
from repro.engine.ciphers import ENGINE_SPECS, TABLE_II_PUBLISHED
from repro.engine.pipeline import exposure_table, viable_replacements


def test_table2_regeneration(benchmark):
    """Print Table II from the model; assert it matches the paper."""

    def build():
        return {
            name: (spec.max_frequency_ghz, spec.cycles_per_block, spec.pipeline_delay_ns)
            for name, spec in ENGINE_SPECS.items()
        }

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print(f"\nTable II: {'Cipher':10s} {'Max Freq (GHz)':>15s} {'Cycles/64B':>11s} "
          f"{'Pipeline Delay (ns)':>20s}")
    for name, (freq, cycles, delay) in rows.items():
        print(f"          {name:10s} {freq:>15.2f} {cycles:>11d} {delay:>20.2f}")
        pub_freq, pub_cycles, pub_delay = TABLE_II_PUBLISHED[name]
        assert freq == pub_freq
        assert cycles == pub_cycles
        assert delay == pytest.approx(pub_delay, abs=0.03)


def test_fig5_exposure_grid(benchmark):
    """Exposed latency of each engine against all 9 JEDEC CAS bins."""
    grid = benchmark.pedantic(exposure_table, rounds=1, iterations=1)
    hidden = {}
    for entry in grid:
        hidden.setdefault(entry.engine, []).append(entry.is_hidden)
    print(f"\nzero-exposed-latency verdicts across {len(JEDEC_CAS_LATENCIES_NS)} CAS bins:")
    for engine, verdicts in hidden.items():
        print(f"  {engine:10s} hidden in {sum(verdicts)}/9 bins")
    assert all(hidden["AES-128"]) and all(hidden["AES-256"]) and all(hidden["ChaCha8"])
    assert not any(hidden["ChaCha20"])
    assert 0 < sum(hidden["ChaCha12"]) < 9  # only the slower bins


def test_viable_replacements_at_fastest_bin(benchmark):
    viable = benchmark.pedantic(
        lambda: viable_replacements(MIN_CAS_LATENCY_NS), rounds=1, iterations=1
    )
    print(f"\nengines fully hidden under {MIN_CAS_LATENCY_NS} ns: {viable}")
    assert set(viable) == {"AES-128", "AES-256", "ChaCha8"}


@pytest.mark.parametrize("cipher", ["chacha8", "chacha20", "aes128", "aes256"])
def test_functional_keystream_throughput(benchmark, cipher):
    """Software keystream rate of the functional engines (64 B blocks)."""
    engine = StreamCipherEngine.from_boot_seed(cipher, 5)
    counter = iter(range(10**9))

    def one_block():
        return engine.keystream_for_block(next(counter) * 64)

    result = benchmark(one_block)
    assert len(result) == 64
