"""Shared benchmark fixtures: prepared machines and dumps, built once.

The benchmarks regenerate every table and figure of the paper on
scaled-down simulated hardware; session-scoped fixtures keep the
expensive world-building out of the timed regions.
"""

from __future__ import annotations

import pytest

from repro.attack.coldboot import TransferConditions, cold_boot_transfer
from repro.dram.image import MemoryImage
from repro.victim.machine import TABLE_I_MACHINES, Machine
from repro.victim.workload import synthesize_memory

#: Scaled DIMM size for attack benchmarks.  The bulk machine data path
#: (vectorised controller/scrambler/decay pipeline) made world-building
#: cheap enough to run the full-machine benchmarks at 16 MiB in the
#: wall-clock budget the seed needed for 2 MiB.
BENCH_MEMORY = 16 << 20

#: The attack-scan stages are linear in bytes scanned, so the
#: throughput/recovery benchmarks measure over a fixed window of the big
#: dump (sized like the seed's entire dump) — the machine is 8x larger,
#: the timed scan work is not.  The window starts at 0 and must cover the
#: planted XTS key table at ``key_table_address`` below.
SCAN_WINDOW_BYTES = 2 << 20


@pytest.fixture(scope="session")
def ddr4_scan_window(ddr4_cold_boot_dump) -> "tuple[MemoryImage, bytes]":
    """A zero-copy 2 MiB scan window into the 16 MiB cold-boot dump."""
    dump, master_key = ddr4_cold_boot_dump
    return dump.view(0, SCAN_WINDOW_BYTES), master_key


@pytest.fixture(scope="session")
def ddr4_cold_boot_dump() -> tuple[MemoryImage, bytes]:
    """A full cold-boot dump of a Skylake victim with a mounted volume.

    Returns (dump, true XTS master key).
    """
    victim = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=BENCH_MEMORY, machine_id=21)
    contents, _ = synthesize_memory(BENCH_MEMORY - 64 * 1024, zero_fraction=0.35, seed=21)
    victim.write(64 * 1024, contents)
    volume = victim.mount_encrypted_volume(b"bench password", key_table_address=(1 << 20) + 29)
    attacker = Machine(TABLE_I_MACHINES["i5-6600K"], memory_bytes=BENCH_MEMORY, machine_id=22)
    dump = cold_boot_transfer(
        victim, attacker, TransferConditions(temperature_c=-25.0, transfer_seconds=5.0)
    )
    return dump, volume.master_key


@pytest.fixture(scope="session")
def skylake_keystream() -> MemoryImage:
    """The DDR4 scrambler keystream of one boot (reverse cold boot)."""
    from repro.attack.coldboot import reverse_cold_boot

    machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=BENCH_MEMORY, machine_id=23)
    return reverse_cold_boot(machine)
