#!/usr/bin/env python
"""Machine-throughput harness: time the simulated memory system itself.

Boots a Table-I Skylake victim, fills its whole module through the
scrambling controller, dumps it back through the descrambler, and
decays the raw image — then repeats every stage on the preserved seed
implementation (:mod:`benchmarks.legacy_machine`), asserts the bulk and
legacy paths produce **byte-identical** scrambled contents and plaintext
dumps, and writes the measurements to ``BENCH_machine.json``::

    python benchmarks/machine_harness.py              # 64 MiB reference run
    python benchmarks/machine_harness.py --smoke      # CI-sized quick pass
    python benchmarks/machine_harness.py --size-mib 16 --no-baseline

Every stage record has the same shape — ``{"wall_s": float,
"mib_per_s": float}`` — and ``end_to_end`` is the boot+fill+dump sum
(the cost of simulating one machine's life up to the attacker's dump).
The record is refused (no file written, non-zero exit) unless the two
paths agree byte for byte.  See ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_REPO_ROOT / "src"), str(_REPO_ROOT)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np  # noqa: E402

from repro.dram.cells import apply_decay  # noqa: E402
from repro.dram.module import DramModule  # noqa: E402
from repro.scrambler.base import bios_seed  # noqa: E402
from repro.scrambler.ddr3 import Ddr3Scrambler  # noqa: E402
from repro.scrambler.ddr4 import Ddr4Scrambler  # noqa: E402
from repro.util.rng import SplitMix64, derive_seed  # noqa: E402
from repro.victim.machine import (  # noqa: E402
    BOOT_POLLUTION_BYTES,
    TABLE_I_MACHINES,
    Machine,
)

from benchmarks.legacy_machine import (  # noqa: E402
    LegacyMemoryController,
    legacy_apply_decay,
    legacy_warm_key_pool,
)

#: Schema tag written into (and required from) every BENCH_machine.json.
BENCH_SCHEMA = "bench-machine/v1"
#: Required fields of every stage record.
STAGE_FIELDS = ("wall_s", "mib_per_s")
#: Stages a complete record must report.
REQUIRED_STAGES = ("boot", "fill", "dump", "decay", "end_to_end")
#: Stages whose sum defines end_to_end.
END_TO_END_STAGES = ("boot", "fill", "dump")

#: Pinned defaults — change them and historical records stop comparing.
DEFAULT_SEED = 7
DEFAULT_MACHINE = "i5-6400"
DEFAULT_DECAY_P = 0.001


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the harness schema."""
    if record.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"schema must be {BENCH_SCHEMA!r}, got {record.get('schema')!r}")
    config = record.get("config")
    if not isinstance(config, dict):
        raise ValueError("missing config object")
    for field in ("size_mib", "machine", "seed", "decay_flip_probability"):
        if field not in config:
            raise ValueError(f"config lacks {field!r}")

    def check_stages(stages: object, where: str) -> None:
        if not isinstance(stages, dict):
            raise ValueError(f"{where} must be an object of stage records")
        for name in REQUIRED_STAGES:
            if name not in stages:
                raise ValueError(f"{where} lacks stage {name!r}")
        for name, stage in stages.items():
            if not isinstance(stage, dict):
                raise ValueError(f"{where}[{name}] must be an object")
            for field in STAGE_FIELDS:
                if field not in stage:
                    raise ValueError(f"{where}[{name}] lacks {field!r}")
            if not float(stage["wall_s"]) >= 0.0:
                raise ValueError(f"{where}[{name}].wall_s must be >= 0")
            if not float(stage["mib_per_s"]) >= 0.0:
                raise ValueError(f"{where}[{name}].mib_per_s must be >= 0")

    check_stages(record.get("stages"), "stages")
    if record.get("baseline") is not None:
        check_stages(record["baseline"], "baseline")
        speedups = record.get("speedup_vs_baseline")
        if not isinstance(speedups, dict) or "end_to_end" not in speedups:
            raise ValueError("baseline present but speedup_vs_baseline incomplete")
        if record.get("identical_dumps") is not True:
            raise ValueError("baseline present but identical_dumps is not true")


def _stage(wall_s: float, size_mib: float) -> dict:
    return {
        "wall_s": wall_s,
        "mib_per_s": (size_mib / wall_s) if wall_s > 0 else 0.0,
    }


def _fill_payload(size: int, seed: int) -> bytes:
    """Deterministic whole-module fill pattern."""
    rng = np.random.Generator(np.random.PCG64(derive_seed("bench-machine-fill", seed)))
    return rng.integers(0, 256, size, dtype=np.uint8).tobytes()


def _scrambled_contents(modules: dict) -> bytes:
    """Raw (post-scrambler) cell contents, concatenated by channel."""
    return b"".join(modules[channel].dump() for channel in sorted(modules))


def _run_fast(spec, size: int, seed: int, payload: bytes, decay_p: float) -> tuple[dict, bytes, bytes]:
    """Time the bulk path; returns (stages, scrambled contents, dump)."""
    size_mib = size / (1 << 20)

    start = time.perf_counter()
    machine = Machine(spec, memory_bytes=size, machine_id=seed)
    for channel in machine.modules:
        machine.scrambler.key_pool(channel)
    boot_s = time.perf_counter() - start

    start = time.perf_counter()
    machine.write(0, payload)
    fill_s = time.perf_counter() - start

    start = time.perf_counter()
    image = machine.bare_metal_dump(0, size)
    dump_s = time.perf_counter() - start
    plain = bytes(image.data)

    scrambled = _scrambled_contents(machine.modules)
    raw = np.frombuffer(scrambled, dtype=np.uint8).copy()
    ground = np.concatenate(
        [machine.modules[ch].ground_state for ch in sorted(machine.modules)]
    )
    rng = np.random.Generator(np.random.PCG64(derive_seed("bench-machine-decay", seed)))
    start = time.perf_counter()
    flips = apply_decay(raw, ground, decay_p, rng)
    decay_s = time.perf_counter() - start

    stages = {
        "boot": _stage(boot_s, size_mib),
        "fill": _stage(fill_s, size_mib),
        "dump": _stage(dump_s, size_mib),
        "decay": {**_stage(decay_s, size_mib), "flips": flips},
        "end_to_end": _stage(boot_s + fill_s + dump_s, size_mib),
    }
    return stages, scrambled, plain


def _run_legacy(spec, size: int, seed: int, payload: bytes, decay_p: float) -> tuple[dict, bytes, bytes]:
    """Time the frozen seed path on an identically configured machine."""
    from repro.dram.address import address_map_for

    size_mib = size / (1 << 20)
    address_map = address_map_for(spec.microarchitecture, spec.channels)
    profile = "DDR4_A" if spec.ddr_generation == "DDR4" else "DDR3_A"
    boot = bios_seed(1, spec.bios_resets_seed, seed)

    start = time.perf_counter()
    modules = {
        ch: DramModule(
            size // spec.channels, profile, serial=derive_seed("dimm", seed, ch)
        )
        for ch in range(spec.channels)
    }
    scrambler_cls = Ddr4Scrambler if spec.ddr_generation == "DDR4" else Ddr3Scrambler
    scrambler = scrambler_cls(boot, address_map, spec.microarchitecture)
    for channel in range(spec.channels):
        legacy_warm_key_pool(scrambler, channel)
    controller = LegacyMemoryController(address_map, modules, scrambler)
    firmware = SplitMix64(derive_seed("boot-pollution", seed, 1))
    controller.write(0, firmware.next_bytes(BOOT_POLLUTION_BYTES))
    boot_s = time.perf_counter() - start

    start = time.perf_counter()
    controller.write(0, payload)
    fill_s = time.perf_counter() - start

    start = time.perf_counter()
    plain = controller.read(0, size)
    dump_s = time.perf_counter() - start

    scrambled = _scrambled_contents(modules)
    raw = np.frombuffer(scrambled, dtype=np.uint8).copy()
    ground = np.concatenate([modules[ch].ground_state for ch in sorted(modules)])
    rng = np.random.Generator(np.random.PCG64(derive_seed("bench-machine-decay", seed)))
    start = time.perf_counter()
    flips = legacy_apply_decay(raw, ground, decay_p, rng)
    decay_s = time.perf_counter() - start

    stages = {
        "boot": _stage(boot_s, size_mib),
        "fill": _stage(fill_s, size_mib),
        "dump": _stage(dump_s, size_mib),
        "decay": {**_stage(decay_s, size_mib), "flips": flips},
        "end_to_end": _stage(boot_s + fill_s + dump_s, size_mib),
    }
    return stages, scrambled, plain


def run_benchmark(
    size_mib: int,
    seed: int = DEFAULT_SEED,
    machine_name: str = DEFAULT_MACHINE,
    decay_p: float = DEFAULT_DECAY_P,
    with_baseline: bool = True,
    smoke: bool = False,
) -> dict:
    """Measure every machine stage at ``size_mib``; return the JSON record."""
    spec = TABLE_I_MACHINES[machine_name]
    size = size_mib << 20
    print(f"[machine-harness] {machine_name}, {size_mib} MiB, seed={seed}")
    payload = _fill_payload(size, seed)

    stages, scrambled, plain = _run_fast(spec, size, seed, payload, decay_p)
    if plain != payload:
        raise SystemExit(
            "[machine-harness] FATAL: descrambled dump does not round-trip the fill"
        )
    for name in ("boot", "fill", "dump", "decay"):
        print(
            f"[machine-harness] {name}: {stages[name]['wall_s']:.3f}s "
            f"({stages[name]['mib_per_s']:.0f} MiB/s)"
        )

    record: dict = {
        "schema": BENCH_SCHEMA,
        "config": {
            "size_mib": size_mib,
            "machine": machine_name,
            "seed": seed,
            "decay_flip_probability": decay_p,
            "smoke": smoke,
        },
        "stages": stages,
        "baseline": None,
    }

    if with_baseline:
        base, base_scrambled, base_plain = _run_legacy(spec, size, seed, payload, decay_p)
        identical = scrambled == base_scrambled and plain == base_plain
        print(
            f"[machine-harness] baseline boot: {base['boot']['wall_s']:.2f}s, "
            f"fill: {base['fill']['wall_s']:.2f}s, dump: {base['dump']['wall_s']:.2f}s, "
            f"decay: {base['decay']['wall_s']:.2f}s; identical dumps: {identical}"
        )
        if not identical:
            raise SystemExit(
                "[machine-harness] FATAL: bulk and legacy paths disagree on "
                "scrambled contents or dump bytes — refusing to emit a record"
            )
        record["baseline"] = base
        record["identical_dumps"] = identical
        record["speedup_vs_baseline"] = {
            name: (base[name]["wall_s"] / stages[name]["wall_s"])
            if stages[name]["wall_s"] > 0
            else float("inf")
            for name in REQUIRED_STAGES
        }
        speedups = record["speedup_vs_baseline"]
        print(
            "[machine-harness] speedup vs seed: "
            + ", ".join(f"{name} {speedups[name]:.1f}x" for name in REQUIRED_STAGES)
        )
    return record


def main(argv: list[str] | None = None) -> int:
    # allow_abbrev: a typo'd --smok must not silently run (and overwrite
    # the output record) as --smoke.
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument("--size-mib", type=int, default=64,
                        help="module size in MiB (default 64)")
    parser.add_argument("--machine", default=DEFAULT_MACHINE,
                        choices=sorted(TABLE_I_MACHINES),
                        help=f"Table-I machine to simulate (default {DEFAULT_MACHINE})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--decay-p", type=float, default=DEFAULT_DECAY_P,
                        help="per-bit flip probability for the decay stage")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the seed-implementation baseline run")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 4 MiB module, baseline included")
    parser.add_argument("--output", default="BENCH_machine.json",
                        help="where to write the JSON record (default BENCH_machine.json)")
    args = parser.parse_args(argv)
    if args.size_mib < 1:
        parser.error("--size-mib must be at least 1")

    size_mib = 4 if args.smoke else args.size_mib
    record = run_benchmark(
        size_mib=size_mib,
        seed=args.seed,
        machine_name=args.machine,
        decay_p=args.decay_p,
        with_baseline=not args.no_baseline,
        smoke=args.smoke,
    )
    validate_bench_record(record)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[machine-harness] wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
