"""Figure 7 — power and area overhead of strong memory encryption.

Regenerates the overhead grid (four 45 nm CPUs x AES-128/ChaCha8 x
full/20 % utilisation) and asserts the figure's claims: area ≈1 % or
below everywhere; power <3 % except the Atom, which peaks ≈17 % at full
utilisation and drops under ≈6 % at realistic load.
"""

import pytest

from repro.engine.power import CPU_PROFILES, estimate_overhead, overhead_grid


def test_fig7_overhead_grid(benchmark):
    grid = benchmark.pedantic(overhead_grid, rounds=1, iterations=1)
    print("\nFigure 7: power and area overheads (one engine per channel)")
    print(f"{'CPU':14s} {'engine':8s} {'util':>5s} {'power':>8s} {'area':>7s}")
    for e in grid:
        print(f"{e.cpu:14s} {e.engine:8s} {e.utilisation:>5.0%} "
              f"{e.power_overhead_percent:>7.2f}% {e.area_overhead_percent:>6.2f}%")

    # Area about or below 1% everywhere.
    assert all(e.area_overhead_percent <= 1.05 for e in grid)
    # Power below 3% except the Atom.
    assert all(
        e.power_overhead_percent < 3.0 for e in grid if e.cpu != "Atom N280"
    )
    atom_full = [e for e in grid if e.cpu == "Atom N280" and e.utilisation == 1.0]
    atom_low = [e for e in grid if e.cpu == "Atom N280" and e.utilisation == 0.2]
    assert max(e.power_overhead_percent for e in atom_full) <= 17.5
    assert max(e.power_overhead_percent for e in atom_full) >= 14.0
    assert all(e.power_overhead_percent < 6.0 for e in atom_low)


def test_fig7_channel_scaling(benchmark):
    """Overhead scales with channel count (one engine per channel)."""

    def per_channel_watts():
        return {
            name: estimate_overhead(name, "ChaCha8", 1.0).power_w / profile.memory_channels
            for name, profile in CPU_PROFILES.items()
        }

    watts = benchmark.pedantic(per_channel_watts, rounds=1, iterations=1)
    print(f"\nper-channel engine power (W): {watts}")
    values = list(watts.values())
    assert all(v == pytest.approx(values[0]) for v in values)


def test_fig7_estimation_speed(benchmark):
    benchmark(lambda: estimate_overhead("Xeon W3520", "AES-128", 0.2))
