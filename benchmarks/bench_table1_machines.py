"""Table I — the tested machines and their scrambler generations.

The paper's Table I lists five CPUs; the reproducible content is that
each generation's scrambler exhibits the right key-pool size and
reboot behaviour.  These benches build each machine, measure the
scrambler properties through the reverse cold boot, and print the
table the paper prints.
"""

import pytest

from repro.analysis.correlation import keystream_key_census
from repro.attack.coldboot import reverse_cold_boot
from repro.victim.machine import TABLE_I_MACHINES, Machine

MEM = 1 << 20


def test_table1_key_census(benchmark):
    """Measure every Table I machine's key pool via reverse cold boot."""

    def census_all():
        rows = []
        for i, (name, spec) in enumerate(TABLE_I_MACHINES.items()):
            machine = Machine(spec, memory_bytes=MEM, machine_id=30 + i)
            census = keystream_key_census(reverse_cold_boot(machine))
            rows.append((spec, census.n_distinct))
        return rows

    rows = benchmark.pedantic(census_all, rounds=1, iterations=1)
    print("\nTable I: CPU models of tested machines (measured key pools)")
    print(f"{'CPU Model':12s} {'Microarchitecture':18s} {'Launch':10s} {'DDR':5s} {'keys/channel':>13s}")
    for spec, n_keys in rows:
        print(f"{spec.cpu_model:12s} {spec.microarchitecture:18s} {spec.launch:10s} "
              f"{spec.ddr_generation:5s} {n_keys:>13d}")
        assert n_keys == (4096 if spec.ddr_generation == "DDR4" else 16)


def test_table1_ddr3_reboot_collapse(benchmark):
    """Every DDR3 machine in Table I has the universal-key flaw."""

    def collapse_counts():
        counts = {}
        for i, (name, spec) in enumerate(TABLE_I_MACHINES.items()):
            if spec.ddr_generation != "DDR3":
                continue
            machine = Machine(spec, memory_bytes=MEM, machine_id=40 + i)
            first = reverse_cold_boot(machine)
            machine.boot()
            second = reverse_cold_boot(machine)
            xored = first.xor(second)
            counts[spec.cpu_model] = len({xored.block(b) for b in range(256)})
        return counts

    counts = benchmark.pedantic(collapse_counts, rounds=1, iterations=1)
    print("\ncross-boot XOR collapse on DDR3 machines (distinct values):", counts)
    assert all(count == 1 for count in counts.values())
