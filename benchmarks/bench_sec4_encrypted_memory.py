"""§IV threat model — encrypted memory defeats cold boot, concedes replay.

Regenerates the security-guarantee analysis: a ChaCha8-encrypted
machine's cold boot dump contains no litmus structure, yields no AES
keys, and is statistically random; while a bus-snooping adversary can
still replay captured ciphertext (the documented trade-off).
"""

import pytest

from repro.analysis.entropy import randomness_report
from repro.attack.coldboot import TransferConditions, cold_boot_transfer
from repro.attack.pipeline import AttackConfig, Ddr4ColdBootAttack
from repro.victim.machine import TABLE_I_MACHINES, Machine
from repro.victim.workload import synthesize_memory

MEM = 1 << 20


def _encrypted_victim(machine_id: int, trace: bool = False) -> Machine:
    machine = Machine(
        TABLE_I_MACHINES["i5-6400"], memory_bytes=MEM, machine_id=machine_id,
        protection="chacha8", trace_bus=trace,
    )
    contents, _ = synthesize_memory(MEM - 64 * 1024, zero_fraction=0.35, seed=machine_id)
    machine.write(64 * 1024, contents)
    machine.mount_encrypted_volume(b"pw", key_table_address=(1 << 19) + 9)
    return machine


def test_cold_boot_attack_fails_on_encrypted_memory(benchmark):
    victim = _encrypted_victim(51)
    attacker = Machine(
        TABLE_I_MACHINES["i5-6600K"], memory_bytes=MEM, machine_id=52, protection="chacha8"
    )
    dump = cold_boot_transfer(victim, attacker, TransferConditions(transfer_seconds=0.0))
    attack = Ddr4ColdBootAttack(AttackConfig(key_scan_limit_bytes=None))
    report = benchmark.pedantic(lambda: attack.run(dump), rounds=1, iterations=1)
    print(f"\nattack on ChaCha8-encrypted dump: {report.summary()}")
    assert report.recovered_keys == []
    assert len(report.candidate_keys) < 5  # only degenerate constants


def test_encrypted_cells_are_random(benchmark):
    victim = _encrypted_victim(53)
    raw = victim.modules[0].dump()[64 * 1024 :]
    stats = benchmark.pedantic(lambda: randomness_report(raw), rounds=1, iterations=1)
    print(f"\nencrypted DRAM cells: entropy {stats.entropy_bits:.3f} b/B, "
          f"ones {stats.ones_density:.4f}, serial corr {stats.serial_correlation:+.4f}")
    assert stats.looks_random()


def test_scrambled_cells_are_not_random_at_block_level(benchmark):
    """The contrast case: the scrambler leaks duplicate-block structure."""
    from repro.analysis.correlation import duplicate_block_stats
    from repro.dram.image import MemoryImage

    machine = Machine(TABLE_I_MACHINES["i5-6400"], memory_bytes=MEM, machine_id=54)
    contents, _ = synthesize_memory(MEM - 64 * 1024, zero_fraction=0.35, seed=54)
    machine.write(64 * 1024, contents)
    stats = benchmark.pedantic(
        lambda: duplicate_block_stats(MemoryImage(machine.modules[0].dump())),
        rounds=1,
        iterations=1,
    )
    print(f"\nscrambled DRAM cells: {100 * stats.duplicate_fraction:.1f}% duplicated blocks")
    assert stats.duplicate_fraction > 0.1


def test_replay_attack_still_works(benchmark):
    """Bus snooping + replay is explicitly out of scope for the scheme."""
    victim = _encrypted_victim(55, trace=True)

    def replay():
        victim.write(0x8000, b"OLD SECRET DATA!" * 4)
        captured = [t for t in victim.controller.bus_trace if t.kind == "write"][-1]
        victim.write(0x8000, b"new clean data!!" * 4)
        victim.controller.raw_write_wire(captured.physical_address, captured.wire_data)
        return victim.read(0x8000, 16)

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    print(f"\nafter ciphertext replay the CPU reads: {result!r}")
    assert result == b"OLD SECRET DATA!"
