"""§III-D — physical characteristics: DRAM retention hot and cold.

Regenerates the retention observations on the seven simulated modules:
90–99 % retention over a 5 s transfer at ≈ −25 °C, heavy loss within
3 s warm, and one DDR3 module leakier than the DDR4 parts.
"""

import pytest

from repro.dram.module import DramModule, random_fill
from repro.dram.retention import DUSTER_TEMPERATURE_C, MODULE_PROFILES, TRANSFER_SECONDS

CAPACITY = 128 * 1024


def _measure(profile: str, celsius: float, seconds: float, serial: int) -> float:
    module = DramModule(CAPACITY, profile, serial=serial)
    payload = random_fill(module)
    module.power_off()
    module.set_temperature(celsius)
    module.advance_time(seconds)
    module.power_on()
    return module.fraction_correct(payload)


def test_retention_table(benchmark):
    """The §III-D table: retention per module, warm vs duster-cooled."""

    def sweep():
        rows = {}
        for serial, name in enumerate(MODULE_PROFILES):
            rows[name] = (
                _measure(name, 20.0, 3.0, serial),
                _measure(name, DUSTER_TEMPERATURE_C, TRANSFER_SECONDS, serial + 100),
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n{'module':10s} {'warm 3s':>9s} {'-25C 5s':>9s}")
    for name, (warm, cold) in rows.items():
        print(f"{name:10s} {100 * warm:8.2f}% {100 * cold:8.2f}%")
    assert all(0.90 <= cold <= 0.9999 for _, cold in rows.values())
    assert all(warm < 0.95 for warm, _ in rows.values())
    ddr3_worst = min(cold for name, (_, cold) in rows.items() if name.startswith("DDR3"))
    ddr4_worst = min(cold for name, (_, cold) in rows.items() if name.startswith("DDR4"))
    assert ddr3_worst < ddr4_worst  # "one DDR3 module leaked data faster"


def test_retention_vs_temperature_series(benchmark):
    """Retention rises monotonically as the module is cooled."""

    def series():
        return [_measure("DDR4_A", c, 5.0, 7) for c in (20.0, 0.0, -25.0, -50.0)]

    values = benchmark.pedantic(series, rounds=1, iterations=1)
    print("\nretention @5s for DDR4_A at 20/0/-25/-50 °C: "
          + " ".join(f"{100 * v:.2f}%" for v in values))
    assert values == sorted(values)


def test_warming_transfer_budget(benchmark):
    """Planning numbers: how long can a sprayed DIMM travel?

    The module warms toward ambient (Newton cooling) while it decays;
    the budget is the longest transfer that keeps retention above the
    target.  Not in the paper's tables, but directly implied by its
    §III-D setup — and it shows why the 5 s transfers were comfortable.
    """
    from repro.dram.thermal import ThermalTransfer

    def budgets():
        transfer = ThermalTransfer(start_celsius=-25.0, ambient_celsius=20.0)
        return {
            name: transfer.max_transfer_seconds(profile, retention_floor=0.90)
            for name, profile in MODULE_PROFILES.items()
        }

    rows = benchmark.pedantic(budgets, rounds=1, iterations=1)
    print("\nmax warming-transfer time keeping >=90% retention (-25C start):")
    for name, seconds in rows.items():
        print(f"  {name:10s} {seconds:7.1f} s")
    # Every module comfortably survives the paper's ~5 s transfers.
    assert all(seconds > 5.0 for seconds in rows.values())


def test_decay_application_throughput(benchmark):
    """Raw speed of the decay model (bits decayed per second of CPU)."""
    module = DramModule(1 << 20, "DDR3_C", serial=9)
    random_fill(module)
    module.power_off()
    module.set_temperature(0.0)

    def one_decay_step():
        module.advance_time(0.25)

    benchmark(one_decay_step)
