"""Figure 3 — visual comparison of DDR3 and DDR4 scramblers, quantified.

The paper's five panels become five measured rows: duplicate-block
statistics for the original image, each scrambler's output, and each
scrambler's output re-read after a reboot; plus the cross-boot XOR
collapse census that defines panels (c) and (e).
"""

import pytest

from repro.analysis.correlation import duplicate_block_stats, xor_collapse_stats
from repro.dram.image import MemoryImage
from repro.scrambler.ddr3 import Ddr3Scrambler
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.victim.workload import test_image

PLAIN = test_image(256, 256).tobytes()  # 1024 blocks with heavy duplication


def _reboot_reread(scrambler_cls):
    raw = scrambler_cls(boot_seed=1).scramble_range(0, PLAIN)
    return scrambler_cls(boot_seed=2).descramble_range(0, raw)


def test_fig3_duplicate_census(benchmark):
    """Panels a/b/c/d/e as duplicate-block statistics."""

    def census():
        panels = {
            "a: original image": PLAIN,
            "b: DDR3 scrambled": Ddr3Scrambler(boot_seed=1).scramble_range(0, PLAIN),
            "c: DDR3 reboot re-read": _reboot_reread(Ddr3Scrambler),
            "d: DDR4 scrambled": Ddr4Scrambler(boot_seed=1).scramble_range(0, PLAIN),
            "e: DDR4 reboot re-read": _reboot_reread(Ddr4Scrambler),
        }
        return {name: duplicate_block_stats(MemoryImage(data)) for name, data in panels.items()}

    stats = benchmark.pedantic(census, rounds=1, iterations=1)
    print("\nFigure 3 (quantified): duplicate 64-byte blocks per panel")
    for name, s in stats.items():
        print(f"  {name:24s} {s.n_distinct:5d} distinct / {s.n_blocks} "
              f"({100 * s.duplicate_fraction:5.1f}% duplicated)")
    # Shape assertions: DDR3 leaks structure, rebooted DDR3 collapses to
    # the original's structure, DDR4 leaks nothing at this image size.
    assert stats["b: DDR3 scrambled"].duplicate_fraction > 0.5
    assert stats["c: DDR3 reboot re-read"].n_distinct == stats["a: original image"].n_distinct
    assert stats["d: DDR4 scrambled"].duplicate_fraction == 0.0
    assert stats["e: DDR4 reboot re-read"].duplicate_fraction == 0.0


def test_fig3_xor_collapse(benchmark):
    """Panels c vs e: the reboot-XOR universal-key test."""
    zeros = bytes(4096 * 64)

    def collapse():
        ddr3 = xor_collapse_stats(
            MemoryImage(Ddr3Scrambler(boot_seed=1).scramble_range(0, zeros)),
            MemoryImage(Ddr3Scrambler(boot_seed=2).scramble_range(0, zeros)),
        )
        ddr4 = xor_collapse_stats(
            MemoryImage(Ddr4Scrambler(boot_seed=1).scramble_range(0, zeros)),
            MemoryImage(Ddr4Scrambler(boot_seed=2).scramble_range(0, zeros)),
        )
        return ddr3, ddr4

    ddr3, ddr4 = benchmark.pedantic(collapse, rounds=1, iterations=1)
    print(f"\ncross-boot XOR: DDR3 {ddr3.distinct_xor_values} distinct values, "
          f"DDR4 {ddr4.distinct_xor_values}")
    assert ddr3.collapses_to_universal_key
    assert ddr4.distinct_xor_values == 4096


def test_fig3_key_pool_ratio(benchmark):
    """§III-B: DDR4's 4096 keys cut correlations 256x vs DDR3's 16."""

    def pools():
        return (
            len(set(Ddr3Scrambler(boot_seed=3).all_keys())),
            len(set(Ddr4Scrambler(boot_seed=3).all_keys())),
        )

    ddr3_keys, ddr4_keys = benchmark.pedantic(pools, rounds=1, iterations=1)
    print(f"\nkey pools: DDR3 {ddr3_keys}, DDR4 {ddr4_keys} (ratio {ddr4_keys // ddr3_keys}x)")
    assert ddr3_keys == 16 and ddr4_keys == 4096


def test_fig3_scramble_throughput(benchmark):
    """Throughput of the scramble path itself (model speed, not HW)."""
    scrambler = Ddr4Scrambler(boot_seed=4)
    scrambler.all_keys()  # warm the key cache as real hardware would
    result = benchmark(lambda: scrambler.scramble_range(0, PLAIN))
    assert len(result) == len(PLAIN)
