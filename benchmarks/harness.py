#!/usr/bin/env python
"""Scan-performance harness: time the attack stages, track the trajectory.

Runs the sharded AES-schedule scan over a pinned-seed synthetic dump,
times each stage (key mining, fingerprint join, verification, and the
end-to-end sharded recovery), runs the preserved seed implementation
(:mod:`benchmarks.legacy_scan`) on the same dump, asserts the two
recover **byte-identical** key sets, and writes the measurements to
``BENCH_scan.json``::

    python benchmarks/harness.py                  # 64 MiB, 4 workers
    python benchmarks/harness.py --smoke          # CI-sized quick pass
    python benchmarks/harness.py --size-mib 8 --workers 2 --no-baseline

Every stage record has the same shape — ``{"wall_s": float,
"blocks_per_s": float, "keys": int, "workers": int}`` — so successive
``BENCH_scan.json`` files diff cleanly as the implementation evolves;
``speedup_vs_baseline`` summarises fast-vs-seed per stage.  See
``docs/performance.md`` for how to read the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_REPO_ROOT / "src"), str(_REPO_ROOT)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.attack.aes_search import AesKeySearch  # noqa: E402
from repro.attack.keymine import keys_matrix, mine_scrambler_keys  # noqa: E402
from repro.attack.parallel import resilient_recover_keys  # noqa: E402
from repro.attack.sweep import synthetic_dump  # noqa: E402
from repro.util.blocks import BLOCK_SIZE  # noqa: E402

from benchmarks.legacy_scan import SeedAesKeySearch, legacy_recover_keys  # noqa: E402

#: Schema tag written into (and required from) every BENCH_scan.json.
BENCH_SCHEMA = "bench-scan/v1"
#: Required fields of every stage record.
STAGE_FIELDS = ("wall_s", "blocks_per_s", "keys", "workers")
#: Stages a complete record must report.
REQUIRED_STAGES = ("mine", "join", "verify", "end_to_end")

#: Pinned defaults — change them and historical records stop comparing.
DEFAULT_SEED = 5
DEFAULT_BIT_ERROR_RATE = 0.002


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the harness schema."""
    if record.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"schema must be {BENCH_SCHEMA!r}, got {record.get('schema')!r}")
    config = record.get("config")
    if not isinstance(config, dict):
        raise ValueError("missing config object")
    for field in ("size_mib", "workers", "seed", "bit_error_rate"):
        if field not in config:
            raise ValueError(f"config lacks {field!r}")

    def check_stages(stages: object, where: str) -> None:
        if not isinstance(stages, dict):
            raise ValueError(f"{where} must be an object of stage records")
        for name in REQUIRED_STAGES:
            if name not in stages:
                raise ValueError(f"{where} lacks stage {name!r}")
        for name, stage in stages.items():
            if not isinstance(stage, dict):
                raise ValueError(f"{where}[{name}] must be an object")
            for field in STAGE_FIELDS:
                if field not in stage:
                    raise ValueError(f"{where}[{name}] lacks {field!r}")
            if not float(stage["wall_s"]) >= 0.0:
                raise ValueError(f"{where}[{name}].wall_s must be >= 0")
            if not float(stage["blocks_per_s"]) >= 0.0:
                raise ValueError(f"{where}[{name}].blocks_per_s must be >= 0")
            if int(stage["keys"]) < 0 or int(stage["workers"]) < 1:
                raise ValueError(f"{where}[{name}] has invalid keys/workers")

    check_stages(record.get("stages"), "stages")
    if record.get("baseline") is not None:
        check_stages(record["baseline"], "baseline")
        speedups = record.get("speedup_vs_baseline")
        if not isinstance(speedups, dict) or "end_to_end" not in speedups:
            raise ValueError("baseline present but speedup_vs_baseline incomplete")
        if not isinstance(record.get("identical_keys"), bool):
            raise ValueError("baseline present but identical_keys missing")


def _canonical_recoveries(recovered: list) -> list[tuple]:
    """Recoveries stripped of pool-ordering artefacts, for comparison.

    The fast miner breaks frequency ties by litmus residual where the
    seed miner broke them lexicographically, so the same candidate pool
    arrives in a different order and every ``ScheduleHit.key_index``
    is relabelled.  Everything that describes the *recovery* — key
    bytes, votes, where in the image each window matched and how well —
    must still agree byte-for-byte.
    """
    return sorted(
        (
            r.master_key,
            r.key_bits,
            r.votes,
            r.first_block_index,
            r.match_fraction,
            r.region_agreement,
            tuple(
                (h.block_index, h.offset, h.round_index, h.mismatch_bits)
                for h in r.hits
            ),
        )
        for r in recovered
    )


def _stage(wall_s: float, n_blocks: int, keys: int, workers: int) -> dict:
    return {
        "wall_s": wall_s,
        "blocks_per_s": (n_blocks / wall_s) if wall_s > 0 else 0.0,
        "keys": keys,
        "workers": workers,
    }


def _time_join_verify(
    search: AesKeySearch, blocks, n_blocks: int, n_keys: int
) -> tuple[dict, dict, int]:
    """Time the join and verify stages over every (offset, phase)."""
    geometry = [
        (offset, phase)
        for offset in search.offsets
        for phase in search.variant.phases()
    ]
    start = time.perf_counter()
    joined = [
        (offset, phase, search._candidate_pairs(blocks, offset, phase))
        for offset, phase in geometry
    ]
    join_s = time.perf_counter() - start

    start = time.perf_counter()
    n_hits = 0
    for offset, phase, pairs in joined:
        n_hits += len(search._verify_pairs(blocks, pairs, offset, phase))
    verify_s = time.perf_counter() - start
    return (
        _stage(join_s, n_blocks, n_keys, 1),
        _stage(verify_s, n_blocks, n_keys, 1),
        n_hits,
    )


def run_benchmark(
    size_mib: int,
    workers: int,
    seed: int = DEFAULT_SEED,
    bit_error_rate: float = DEFAULT_BIT_ERROR_RATE,
    with_baseline: bool = True,
    smoke: bool = False,
) -> dict:
    """Measure all stages on one pinned dump; return the JSON record."""
    n_blocks = (size_mib << 20) // BLOCK_SIZE
    print(f"[harness] building {size_mib} MiB dump (seed={seed}, ber={bit_error_rate})")
    dump, master, _ = synthetic_dump(bit_error_rate, n_blocks=n_blocks, seed=seed)

    start = time.perf_counter()
    candidates = mine_scrambler_keys(dump)
    mine_s = time.perf_counter() - start
    n_keys = len(candidates)
    keys = keys_matrix(candidates)
    blocks = dump.blocks_matrix()
    print(f"[harness] mine: {mine_s:.2f}s, {n_keys} candidate keys")

    fast_search = AesKeySearch(keys, key_bits=256)
    join_stage, verify_stage, n_hits = _time_join_verify(
        fast_search, blocks, n_blocks, n_keys
    )
    print(
        f"[harness] join: {join_stage['wall_s']:.2f}s, "
        f"verify: {verify_stage['wall_s']:.2f}s ({n_hits} hits)"
    )

    start = time.perf_counter()
    scan = resilient_recover_keys(dump, key_bits=256, workers=workers, n_shards=workers)
    end_to_end_s = time.perf_counter() - start
    recovered = scan.recovered
    masters = {r.master_key for r in recovered}
    if not (master[:32] in masters and master[32:] in masters):
        raise SystemExit("[harness] FATAL: scan failed to recover the planted XTS pair")
    print(
        f"[harness] end-to-end ({workers} workers): {end_to_end_s:.2f}s, "
        f"{len(recovered)} keys recovered"
    )

    record: dict = {
        "schema": BENCH_SCHEMA,
        "config": {
            "size_mib": size_mib,
            "workers": workers,
            "seed": seed,
            "bit_error_rate": bit_error_rate,
            "smoke": smoke,
        },
        "stages": {
            "mine": _stage(mine_s, n_blocks, n_keys, 1),
            "join": join_stage,
            "verify": verify_stage,
            "end_to_end": _stage(end_to_end_s, n_blocks, n_keys, workers),
        },
        "baseline": None,
    }

    if with_baseline:
        seed_search = SeedAesKeySearch(keys, key_bits=256)
        base_join, base_verify, _ = _time_join_verify(
            seed_search, blocks, n_blocks, n_keys
        )
        print(
            f"[harness] baseline join: {base_join['wall_s']:.2f}s, "
            f"verify: {base_verify['wall_s']:.2f}s"
        )
        start = time.perf_counter()
        legacy = legacy_recover_keys(dump, key_bits=256, workers=workers, n_shards=workers)
        base_e2e_s = time.perf_counter() - start
        print(f"[harness] baseline end-to-end: {base_e2e_s:.2f}s")

        identical = _canonical_recoveries(recovered) == _canonical_recoveries(legacy)
        record["baseline"] = {
            # The seed miner's cost is only visible inside end_to_end;
            # this mirrors the fast mine record to satisfy the schema.
            "mine": _stage(mine_s, n_blocks, n_keys, 1),
            "join": base_join,
            "verify": base_verify,
            "end_to_end": _stage(base_e2e_s, n_blocks, n_keys, workers),
        }
        record["identical_keys"] = identical
        record["speedup_vs_baseline"] = {
            name: (record["baseline"][name]["wall_s"] / record["stages"][name]["wall_s"])
            if record["stages"][name]["wall_s"] > 0
            else float("inf")
            for name in ("join", "verify", "end_to_end")
        }
        speedup = record["speedup_vs_baseline"]["end_to_end"]
        print(
            f"[harness] speedup vs seed: join {record['speedup_vs_baseline']['join']:.1f}x, "
            f"verify {record['speedup_vs_baseline']['verify']:.1f}x, "
            f"end-to-end {speedup:.1f}x; identical keys: {identical}"
        )
        if not identical:
            raise SystemExit(
                "[harness] FATAL: vectorised scan and seed scan disagree on "
                "the recovered keys"
            )
    return record


def main(argv: list[str] | None = None) -> int:
    # allow_abbrev: a typo'd --smok must not silently run (and overwrite
    # the output record) as --smoke.
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument("--size-mib", type=int, default=64,
                        help="reference dump size in MiB (default 64)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the end-to-end stage (default 4)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--bit-error-rate", type=float, default=DEFAULT_BIT_ERROR_RATE)
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the seed-implementation baseline run")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 1 MiB dump, 2 workers, baseline included")
    parser.add_argument("--output", default="BENCH_scan.json",
                        help="where to write the JSON record (default BENCH_scan.json)")
    args = parser.parse_args(argv)
    if args.size_mib < 1:
        parser.error("--size-mib must be at least 1")
    if args.workers < 1:
        parser.error("--workers must be at least 1")

    size_mib = 1 if args.smoke else args.size_mib
    workers = 2 if args.smoke else args.workers
    record = run_benchmark(
        size_mib=size_mib,
        workers=workers,
        seed=args.seed,
        bit_error_rate=args.bit_error_rate,
        with_baseline=not args.no_baseline,
        smoke=args.smoke,
    )
    validate_bench_record(record)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[harness] wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
