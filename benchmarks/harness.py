#!/usr/bin/env python
"""Scan-performance harness: time the attack stages, track the trajectory.

Runs the sharded AES-schedule scan over a pinned-seed synthetic dump,
times each stage (key mining, fingerprint join, verification, and the
end-to-end sharded recovery), runs the preserved seed implementation
(:mod:`benchmarks.legacy_scan`) on the same dump, asserts the two
recover **byte-identical** key sets, and writes the measurements to
``BENCH_scan.json``::

    python benchmarks/harness.py                  # 64 MiB, 4 workers
    python benchmarks/harness.py --smoke          # CI-sized quick pass
    python benchmarks/harness.py --repeat 3       # median-of-3 stages
    python benchmarks/harness.py --min-speedup 20 # regression gate (CI)

Stage times are honest: the fast path's join and verify numbers come
from :attr:`AesKeySearch.stage_seconds` — the clocks the fused kernel
runs *inside* ``find_hits`` — not from replaying the stages separately,
and each record's ``workers`` field is the parallelism the stage really
ran with (mine/join/verify are single-threaded measurements; only
``end_to_end`` fans out, and it also records which executor the scan
chose).  With ``--repeat N`` every fast stage is measured N times and
the median recorded (raw samples ride along as ``wall_s_samples``).

Every stage record has the same shape — ``{"wall_s": float,
"blocks_per_s": float, "keys": int, "workers": int}`` — so successive
``BENCH_scan.json`` files diff cleanly as the implementation evolves;
``speedup_vs_baseline`` summarises fast-vs-seed per stage.  With
``--min-speedup X`` the harness exits non-zero when the end-to-end
speedup drops below ``X`` or the recoveries diverge from the seed
path — the CI regression gate.  See ``docs/performance.md`` for how to
read the numbers.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_REPO_ROOT / "src"), str(_REPO_ROOT)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.attack.aes_search import AesKeySearch  # noqa: E402
from repro.attack.keymine import keys_matrix, mine_scrambler_keys  # noqa: E402
from repro.attack.parallel import resilient_recover_keys  # noqa: E402
from repro.attack.sweep import synthetic_dump  # noqa: E402
from repro.util.blocks import BLOCK_SIZE  # noqa: E402

from benchmarks.legacy_scan import SeedAesKeySearch, legacy_recover_keys  # noqa: E402

#: Schema tag written into (and required from) every BENCH_scan.json.
BENCH_SCHEMA = "bench-scan/v1"
#: Required fields of every stage record.
STAGE_FIELDS = ("wall_s", "blocks_per_s", "keys", "workers")
#: Stages a complete record must report.
REQUIRED_STAGES = ("mine", "join", "verify", "end_to_end")

#: Pinned defaults — change them and historical records stop comparing.
DEFAULT_SEED = 5
DEFAULT_BIT_ERROR_RATE = 0.002


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the harness schema."""
    if record.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"schema must be {BENCH_SCHEMA!r}, got {record.get('schema')!r}")
    config = record.get("config")
    if not isinstance(config, dict):
        raise ValueError("missing config object")
    for field in ("size_mib", "workers", "seed", "bit_error_rate"):
        if field not in config:
            raise ValueError(f"config lacks {field!r}")

    def check_stages(stages: object, where: str) -> None:
        if not isinstance(stages, dict):
            raise ValueError(f"{where} must be an object of stage records")
        for name in REQUIRED_STAGES:
            if name not in stages:
                raise ValueError(f"{where} lacks stage {name!r}")
        for name, stage in stages.items():
            if not isinstance(stage, dict):
                raise ValueError(f"{where}[{name}] must be an object")
            for field in STAGE_FIELDS:
                if field not in stage:
                    raise ValueError(f"{where}[{name}] lacks {field!r}")
            if not float(stage["wall_s"]) >= 0.0:
                raise ValueError(f"{where}[{name}].wall_s must be >= 0")
            if not float(stage["blocks_per_s"]) >= 0.0:
                raise ValueError(f"{where}[{name}].blocks_per_s must be >= 0")
            if int(stage["keys"]) < 0 or int(stage["workers"]) < 1:
                raise ValueError(f"{where}[{name}] has invalid keys/workers")

    check_stages(record.get("stages"), "stages")
    if record.get("baseline") is not None:
        check_stages(record["baseline"], "baseline")
        speedups = record.get("speedup_vs_baseline")
        if not isinstance(speedups, dict) or "end_to_end" not in speedups:
            raise ValueError("baseline present but speedup_vs_baseline incomplete")
        if not isinstance(record.get("identical_keys"), bool):
            raise ValueError("baseline present but identical_keys missing")


def _canonical_recoveries(recovered: list) -> list[tuple]:
    """Recoveries stripped of pool-ordering artefacts, for comparison.

    The fast miner breaks frequency ties by litmus residual where the
    seed miner broke them lexicographically, so the same candidate pool
    arrives in a different order and every ``ScheduleHit.key_index``
    is relabelled.  Everything that describes the *recovery* — key
    bytes, votes, where in the image each window matched and how well —
    must still agree byte-for-byte.
    """
    return sorted(
        (
            r.master_key,
            r.key_bits,
            r.votes,
            r.first_block_index,
            r.match_fraction,
            r.region_agreement,
            tuple(
                (h.block_index, h.offset, h.round_index, h.mismatch_bits)
                for h in r.hits
            ),
        )
        for r in recovered
    )


def _stage(
    wall_s: float,
    n_blocks: int,
    keys: int,
    workers: int,
    samples: list[float] | None = None,
    **extra: object,
) -> dict:
    record = {
        "wall_s": wall_s,
        "blocks_per_s": (n_blocks / wall_s) if wall_s > 0 else 0.0,
        "keys": keys,
        "workers": workers,
    }
    if samples is not None and len(samples) > 1:
        record["wall_s_samples"] = samples
    record.update(extra)
    return record


def _time_join_verify(
    search: AesKeySearch, blocks, n_blocks: int, n_keys: int
) -> tuple[dict, dict, int]:
    """Time the seed path's join and verify over every (offset, phase).

    Only the frozen :class:`SeedAesKeySearch` is measured this way —
    its stages really are separate passes.  The fast path reports the
    clocks the fused kernel keeps itself (``stage_seconds``)."""
    geometry = [
        (offset, phase)
        for offset in search.offsets
        for phase in search.variant.phases()
    ]
    start = time.perf_counter()
    joined = [
        (offset, phase, search._candidate_pairs(blocks, offset, phase))
        for offset, phase in geometry
    ]
    join_s = time.perf_counter() - start

    start = time.perf_counter()
    n_hits = 0
    for offset, phase, pairs in joined:
        n_hits += len(search._verify_pairs(blocks, pairs, offset, phase))
    verify_s = time.perf_counter() - start
    return (
        _stage(join_s, n_blocks, n_keys, 1),
        _stage(verify_s, n_blocks, n_keys, 1),
        n_hits,
    )


def run_benchmark(
    size_mib: int,
    workers: int,
    seed: int = DEFAULT_SEED,
    bit_error_rate: float = DEFAULT_BIT_ERROR_RATE,
    with_baseline: bool = True,
    smoke: bool = False,
    repeat: int = 1,
) -> dict:
    """Measure all stages on one pinned dump; return the JSON record.

    ``repeat`` reruns the fast-path measurements (mine, fused
    join/verify, end-to-end) that many times and records the median per
    stage; the deterministic seed baseline runs once — it is the frozen
    reference, ~20× slower, and not the thing whose noise we are
    smoothing.
    """
    n_blocks = (size_mib << 20) // BLOCK_SIZE
    print(f"[harness] building {size_mib} MiB dump (seed={seed}, ber={bit_error_rate})")
    dump, master, _ = synthetic_dump(bit_error_rate, n_blocks=n_blocks, seed=seed)

    mine_samples: list[float] = []
    join_samples: list[float] = []
    verify_samples: list[float] = []
    e2e_samples: list[float] = []
    n_keys = n_hits = 0
    executor = "serial"
    keys = None
    blocks = None
    recovered = None
    for rep in range(repeat):
        start = time.perf_counter()
        candidates = mine_scrambler_keys(dump)
        mine_samples.append(time.perf_counter() - start)
        n_keys = len(candidates)
        keys = keys_matrix(candidates)
        blocks = dump.blocks_matrix()

        # The fused kernel times its own stages while it streams; read
        # them back instead of re-simulating the join and verify as
        # separate passes the scan no longer performs.
        fast_search = AesKeySearch(keys, key_bits=256)
        n_hits = len(fast_search.find_hits(dump))
        join_samples.append(fast_search.stage_seconds["join"])
        verify_samples.append(fast_search.stage_seconds["verify"])

        start = time.perf_counter()
        scan = resilient_recover_keys(
            dump, key_bits=256, workers=workers, n_shards=workers
        )
        e2e_samples.append(time.perf_counter() - start)
        executor = scan.executor
        if recovered is None:
            recovered = scan.recovered
        masters = {r.master_key for r in scan.recovered}
        if not (master[:32] in masters and master[32:] in masters):
            raise SystemExit(
                "[harness] FATAL: scan failed to recover the planted XTS pair"
            )
        print(
            f"[harness] rep {rep + 1}/{repeat}: mine {mine_samples[-1]:.2f}s "
            f"({n_keys} keys), join {join_samples[-1]:.2f}s, "
            f"verify {verify_samples[-1]:.2f}s ({n_hits} hits), "
            f"end-to-end {e2e_samples[-1]:.2f}s "
            f"({workers} workers, {executor} executor, "
            f"{len(scan.recovered)} keys recovered)"
        )

    record: dict = {
        "schema": BENCH_SCHEMA,
        "config": {
            "size_mib": size_mib,
            "workers": workers,
            "seed": seed,
            "bit_error_rate": bit_error_rate,
            "smoke": smoke,
            "repeat": repeat,
        },
        "stages": {
            "mine": _stage(
                statistics.median(mine_samples), n_blocks, n_keys, 1,
                samples=mine_samples,
            ),
            "join": _stage(
                statistics.median(join_samples), n_blocks, n_keys, 1,
                samples=join_samples,
            ),
            "verify": _stage(
                statistics.median(verify_samples), n_blocks, n_keys, 1,
                samples=verify_samples,
            ),
            "end_to_end": _stage(
                statistics.median(e2e_samples), n_blocks, n_keys, workers,
                samples=e2e_samples, executor=executor, shards=workers,
            ),
        },
        "baseline": None,
    }

    if with_baseline:
        seed_search = SeedAesKeySearch(keys, key_bits=256)
        base_join, base_verify, _ = _time_join_verify(
            seed_search, blocks, n_blocks, n_keys
        )
        print(
            f"[harness] baseline join: {base_join['wall_s']:.2f}s, "
            f"verify: {base_verify['wall_s']:.2f}s"
        )
        start = time.perf_counter()
        legacy = legacy_recover_keys(dump, key_bits=256, workers=workers, n_shards=workers)
        base_e2e_s = time.perf_counter() - start
        print(f"[harness] baseline end-to-end: {base_e2e_s:.2f}s")

        identical = _canonical_recoveries(recovered) == _canonical_recoveries(legacy)
        record["baseline"] = {
            # The seed miner's cost is only visible inside end_to_end;
            # this mirrors the fast mine record to satisfy the schema.
            "mine": _stage(statistics.median(mine_samples), n_blocks, n_keys, 1),
            "join": base_join,
            "verify": base_verify,
            "end_to_end": _stage(base_e2e_s, n_blocks, n_keys, workers),
        }
        record["identical_keys"] = identical
        record["speedup_vs_baseline"] = {
            name: (record["baseline"][name]["wall_s"] / record["stages"][name]["wall_s"])
            if record["stages"][name]["wall_s"] > 0
            else float("inf")
            for name in ("join", "verify", "end_to_end")
        }
        speedup = record["speedup_vs_baseline"]["end_to_end"]
        print(
            f"[harness] speedup vs seed: join {record['speedup_vs_baseline']['join']:.1f}x, "
            f"verify {record['speedup_vs_baseline']['verify']:.1f}x, "
            f"end-to-end {speedup:.1f}x; identical keys: {identical}"
        )
        if not identical:
            raise SystemExit(
                "[harness] FATAL: vectorised scan and seed scan disagree on "
                "the recovered keys"
            )
    return record


def main(argv: list[str] | None = None) -> int:
    # allow_abbrev: a typo'd --smok must not silently run (and overwrite
    # the output record) as --smoke.
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument("--size-mib", type=int, default=64,
                        help="reference dump size in MiB (default 64)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the end-to-end stage (default 4)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--bit-error-rate", type=float, default=DEFAULT_BIT_ERROR_RATE)
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the seed-implementation baseline run")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 1 MiB dump, 2 workers, baseline included")
    parser.add_argument("--repeat", type=int, default=1,
                        help="measure the fast stages N times, record medians "
                             "(default 1)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="regression gate: exit non-zero unless the "
                             "end-to-end speedup vs the seed baseline reaches "
                             "this floor with identical recoveries")
    parser.add_argument("--output", default="BENCH_scan.json",
                        help="where to write the JSON record (default BENCH_scan.json)")
    args = parser.parse_args(argv)
    if args.size_mib < 1:
        parser.error("--size-mib must be at least 1")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")
    if args.min_speedup is not None and args.no_baseline:
        parser.error("--min-speedup needs the baseline (drop --no-baseline)")

    size_mib = 1 if args.smoke else args.size_mib
    workers = 2 if args.smoke else args.workers
    record = run_benchmark(
        size_mib=size_mib,
        workers=workers,
        seed=args.seed,
        bit_error_rate=args.bit_error_rate,
        with_baseline=not args.no_baseline,
        smoke=args.smoke,
        repeat=args.repeat,
    )
    validate_bench_record(record)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[harness] wrote {args.output}")

    if args.min_speedup is not None:
        speedup = record["speedup_vs_baseline"]["end_to_end"]
        identical = record["identical_keys"]
        if not identical or speedup < args.min_speedup:
            print(
                f"[harness] GATE FAILED: end-to-end speedup {speedup:.1f}x "
                f"(floor {args.min_speedup:.1f}x), identical_keys={identical}",
                file=sys.stderr,
            )
            return 1
        print(
            f"[harness] gate passed: {speedup:.1f}x >= "
            f"{args.min_speedup:.1f}x, identical recoveries"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
