"""Service soak: SIGKILL the job server mid-fleet, lose nothing.

The ``repro serve`` tentpole claims the job engine is *crash-only* at
the whole-service level: whatever instant a SIGKILL (or SIGTERM drain,
deadline expiry, overload, scripted fault storm, or cancel) lands, the
service either

* **completes** every admitted job with a report canonically
  byte-identical to an undisturbed run's, or
* **holds** it durably — spooled, queued, or resumable from its shard
  journal — so the next ``serve`` finishes it without redoing or
  duplicating work.

``python -m benchmarks.service_soak`` soaks that claim with *real*
server processes (threads cannot be SIGKILL'd): each iteration rotates
through eight scenarios, drives the actual CLI engine over a scratch
service directory, kills it at journal-watcher-chosen instants, restarts
it, and checks three invariants everywhere they apply — zero lost jobs
(every accepted job reaches a terminal state), zero duplicated side
effects (exactly one terminal WAL record per job), and byte-identical
resumed reports (:func:`repro.attack.report.canonical_report_bytes`).
The result is ``ROBUST_service.json`` (schema ``robust-service/v1``),
validated before it is written; the record carries the soak's seed and
the exact one-line command that reproduces it.  ``--smoke`` runs one
rotation for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.attack.report import canonical_report_bytes, load_report_json
from repro.attack.sweep import synthetic_dump
from repro.resilience.errors import AdmissionRejectedError
from repro.resilience.faults import PERMANENT
from repro.resilience.shutdown import EXIT_INTERRUPTED
from repro.service import (
    JobSpec,
    replay_jobs,
    request_cancel,
    submit_job,
    wait_for_admission,
)
from repro.service.jobstore import TERMINAL_STATES

#: Schema tag for downstream consumers of the JSON artifact.
SERVICE_SCHEMA = "robust-service/v1"

#: One rotation exercises every failure mode once; the default soak runs
#: three rotations (24 iterations) so each mode fires at several
#: different kill instants.
SCENARIOS = (
    "kill-mid-job",
    "kill-mid-fleet",
    "kill-before-pickup",
    "overload-reject",
    "deadline-expiry",
    "retry-quarantine",
    "cancel-mid-job",
    "drain-sigterm",
)

DEFAULT_ROTATIONS = 3
N_SHARDS = 8
SCAN_WORKERS = 2

_ITERATION_FIELDS = {
    "iteration": int,
    "scenario": str,
    "jobs_submitted": int,
    "jobs_rejected": int,
    "server_starts": int,
    "kills": int,
    "terminal_states": dict,
    "identity_checks": int,
    "byte_identical": bool,
    "duplicate_side_effects": int,
    "lost_jobs": list,
    "seconds": float,
    "violations": list,
}

_ACCEPTANCE_BOOLS = (
    "zero_violations",
    "zero_lost_jobs",
    "zero_duplicate_side_effects",
    "all_resumed_byte_identical",
    "kill_exercised",
    "drain_exercised",
    "deadline_exercised",
    "rejection_exercised",
    "quarantine_exercised",
    "cancel_exercised",
)

_REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


# ----------------------------------------------------------------- utilities


def _serve_argv(service_dir: Path, *, workers: int = 1, max_queued: int = 16,
                max_attempts: int = 3, idle_exit: float = 4.0) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve", str(service_dir),
        "--workers", str(workers),
        "--max-queued", str(max_queued),
        "--max-attempts", str(max_attempts),
        "--retry-base-delay", "0.05",
        "--retry-max-delay", "0.2",
        "--poll-interval", "0.05",
        "--idle-exit", str(idle_exit),
    ]


def _start_server(service_dir: Path, **kwargs) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=_REPO_SRC)
    return subprocess.Popen(_serve_argv(service_dir, **kwargs), env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _journaled_shards(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text(encoding="utf-8").splitlines():
        try:
            if json.loads(line).get("type") == "shard":
                count += 1
        except ValueError:
            continue  # torn tail mid-kill — exactly what we're soaking
    return count


def _await(predicate, timeout_s: float, interval_s: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _await_terminal(service_dir: Path, job_ids: list[str],
                    timeout_s: float = 120.0) -> dict[str, str]:
    """Wait for every job to reach a terminal state; returns states."""

    def all_terminal() -> bool:
        jobs = replay_jobs(service_dir / "jobs.wal")
        return all(job_id in jobs and jobs[job_id].terminal
                   for job_id in job_ids)

    _await(all_terminal, timeout_s, interval_s=0.05)
    jobs = replay_jobs(service_dir / "jobs.wal")
    return {job_id: (jobs[job_id].state if job_id in jobs else "LOST")
            for job_id in job_ids}


def _spec(job_id: str, dump_path: str, **overrides) -> JobSpec:
    defaults = dict(job_id=job_id, dump=dump_path,
                    scan_workers=SCAN_WORKERS, n_shards=N_SHARDS)
    defaults.update(overrides)
    return JobSpec(**defaults)


class _Iteration:
    """Accumulates one scenario run's bookkeeping and verdicts."""

    def __init__(self, index: int, scenario: str, root: Path,
                 dump_path: str, baseline: bytes) -> None:
        self.index = index
        self.scenario = scenario
        self.service_dir = root / f"iter{index:03d}"
        self.dump_path = dump_path
        self.baseline = baseline
        self.submitted: list[str] = []
        self.rejected: list[str] = []
        self.server_starts = 0
        self.kills = 0
        self.identity_checks = 0
        self.identity_failures = 0
        self.violations: list[str] = []
        self._start = time.perf_counter()
        self._servers: list[subprocess.Popen] = []

    # -- server fleet ------------------------------------------------------

    def serve(self, **kwargs) -> subprocess.Popen:
        server = _start_server(self.service_dir, **kwargs)
        self._servers.append(server)
        self.server_starts += 1
        return server

    def sigkill(self, server: subprocess.Popen) -> None:
        os.kill(server.pid, signal.SIGKILL)
        server.wait()
        self.kills += 1

    def reap(self) -> None:
        for server in self._servers:
            if server.poll() is None:
                server.kill()
                server.wait()

    # -- jobs --------------------------------------------------------------

    def submit(self, job_id: str, **overrides) -> str:
        submit_job(self.service_dir, _spec(job_id, self.dump_path, **overrides))
        self.submitted.append(job_id)
        return job_id

    def journal(self, job_id: str) -> Path:
        return self.service_dir / "jobs" / job_id / "checkpoint.jsonl"

    def await_shards(self, job_id: str, n: int = 1,
                     timeout_s: float = 60.0) -> None:
        if not _await(lambda: _journaled_shards(self.journal(job_id)) >= n,
                      timeout_s):
            self.violations.append(
                f"{job_id}: never journaled {n} shard(s) "
                f"(saw {_journaled_shards(self.journal(job_id))})")

    def check_identity(self, job_id: str) -> None:
        """A DONE job's report must match the undisturbed baseline."""
        self.identity_checks += 1
        report_path = self.service_dir / "jobs" / job_id / "report.json"
        try:
            report = load_report_json(report_path)
        except (OSError, ValueError) as exc:
            self.identity_failures += 1
            self.violations.append(f"{job_id}: unreadable report: {exc}")
            return
        if canonical_report_bytes(report) != self.baseline:
            self.identity_failures += 1
            self.violations.append(
                f"{job_id}: resumed report diverged from the baseline")

    def expect(self, states: dict[str, str], want: dict[str, str]) -> None:
        for job_id, expected in want.items():
            if states.get(job_id) != expected:
                self.violations.append(
                    f"{job_id}: expected {expected}, got {states.get(job_id)}")

    # -- record ------------------------------------------------------------

    def record(self) -> dict:
        jobs = replay_jobs(self.service_dir / "jobs.wal")
        lost = [job_id for job_id in self.submitted
                if job_id not in jobs or jobs[job_id].state not in TERMINAL_STATES]
        duplicates = sum(max(0, job.terminal_events - 1)
                         for job in jobs.values())
        if duplicates:
            self.violations.append(
                f"{duplicates} duplicated terminal side effect(s) in the WAL")
        terminal_states: dict[str, int] = {}
        for job in jobs.values():
            terminal_states[job.state] = terminal_states.get(job.state, 0) + 1
        return {
            "iteration": self.index,
            "scenario": self.scenario,
            "jobs_submitted": len(self.submitted),
            "jobs_rejected": len(self.rejected),
            "server_starts": self.server_starts,
            "kills": self.kills,
            "terminal_states": terminal_states,
            "identity_checks": self.identity_checks,
            "byte_identical": self.identity_failures == 0,
            "duplicate_side_effects": duplicates,
            "lost_jobs": lost,
            "seconds": time.perf_counter() - self._start,
            "violations": self.violations,
        }


# ----------------------------------------------------------------- scenarios


def _run_kill_mid_job(it: _Iteration) -> None:
    """SIGKILL with one job mid-scan; the restart must resume it."""
    server = it.serve()
    it.submit("job-0")
    it.await_shards("job-0", 1)
    it.sigkill(server)
    it.serve()
    states = _await_terminal(it.service_dir, it.submitted)
    it.expect(states, {"job-0": "DONE"})
    it.check_identity("job-0")


def _run_kill_mid_fleet(it: _Iteration) -> None:
    """SIGKILL with a whole fleet in flight: one running, others queued."""
    server = it.serve(workers=1)
    for index in range(3):
        it.submit(f"job-{index}")
    it.await_shards("job-0", 1)
    it.sigkill(server)
    it.serve(workers=2)
    states = _await_terminal(it.service_dir, it.submitted, timeout_s=180)
    it.expect(states, {job_id: "DONE" for job_id in it.submitted})
    for job_id in it.submitted:
        it.check_identity(job_id)


def _run_kill_before_pickup(it: _Iteration) -> None:
    """A submission spooled with no server alive survives to admission."""
    it.submit("job-0")  # no server running: stays in the spool
    if not (it.service_dir / "spool" / "job-0.submit.json").exists():
        it.violations.append("submission did not land in the spool")
    it.serve()
    states = _await_terminal(it.service_dir, it.submitted)
    it.expect(states, {"job-0": "DONE"})
    it.check_identity("job-0")


def _run_overload_reject(it: _Iteration) -> None:
    """Past the queue bound the server rejects with a typed receipt."""
    server = it.serve(workers=1, max_queued=1)
    # A slow job to hold the single worker...
    it.submit("job-busy", n_shards=32, scan_workers=1)
    it.await_shards("job-busy", 1)
    # ...one fills the queue, the next must bounce.
    it.submit("job-queued")
    try:
        wait_for_admission(it.service_dir, "job-queued", timeout_s=20)
    except (AdmissionRejectedError, TimeoutError) as exc:
        it.violations.append(f"job-queued should have been admitted: {exc!r}")
    it.submit("job-over")
    try:
        wait_for_admission(it.service_dir, "job-over", timeout_s=20)
        it.violations.append("job-over was admitted past the queue bound")
    except AdmissionRejectedError:
        it.rejected.append("job-over")
        it.submitted.remove("job-over")  # rejection is not a lost job
    except TimeoutError:
        it.violations.append("job-over got neither admission nor rejection")
    states = _await_terminal(it.service_dir, it.submitted, timeout_s=180)
    it.expect(states, {"job-busy": "DONE", "job-queued": "DONE"})
    it.check_identity("job-queued")
    server.wait(timeout=60)


def _run_deadline_expiry(it: _Iteration) -> None:
    """A per-job deadline lands EXPIRED with a resumable partial report;
    resubmitting against the same journal finishes byte-identically."""
    it.serve()
    it.submit("job-dead", deadline_s=0.05, scan_workers=1, n_shards=N_SHARDS)
    states = _await_terminal(it.service_dir, ["job-dead"])
    it.expect(states, {"job-dead": "EXPIRED"})
    report_path = it.service_dir / "jobs" / "job-dead" / "report.json"
    if report_path.exists():
        partial = load_report_json(report_path)
        if not partial["resilience"]["unscanned_shards"]:
            it.violations.append("expired job left no unscanned shards")
        if partial["service"]["terminal_state"] != "EXPIRED":
            it.violations.append("partial report not marked EXPIRED")
    else:
        it.violations.append("expired job wrote no partial report")
    # Resume: a fresh job over the same journal completes the scan.
    it.submit("job-resume", checkpoint=str(it.journal("job-dead")),
              scan_workers=SCAN_WORKERS, n_shards=N_SHARDS)
    states = _await_terminal(it.service_dir, ["job-resume"])
    it.expect(states, {"job-resume": "DONE"})
    it.check_identity("job-resume")


def _run_retry_quarantine(it: _Iteration) -> None:
    """A permanently faulting job exhausts its retries and lands FAILED."""
    it.serve(max_attempts=2)
    # Crash every shard forever: the scan quarantines, the supervisor
    # retries the whole job, then gives up.  Offsets mirror
    # shard_image's ceil-by-blocks split.
    total_blocks = os.path.getsize(it.dump_path) // 64
    per_shard = -(-total_blocks // N_SHARDS) * 64
    faults = [[index * per_shard, {"kind": "crash", "first_attempts": PERMANENT}]
              for index in range(N_SHARDS)]
    it.submit("job-doomed", faults=faults)
    states = _await_terminal(it.service_dir, ["job-doomed"], timeout_s=180)
    it.expect(states, {"job-doomed": "FAILED"})
    jobs = replay_jobs(it.service_dir / "jobs.wal")
    doomed = jobs.get("job-doomed")
    if doomed is not None and doomed.attempts != 2:
        it.violations.append(
            f"job-doomed ran {doomed.attempts} attempts, want 2")
    # A healthy job on the same (restarted) service still completes.
    it.submit("job-fine")
    states = _await_terminal(it.service_dir, ["job-fine"])
    it.expect(states, {"job-fine": "DONE"})
    it.check_identity("job-fine")


def _run_cancel_mid_job(it: _Iteration) -> None:
    """Cancel trips the running scan's stop flag; the journal survives."""
    it.serve()
    it.submit("job-cancel", scan_workers=1, n_shards=64)
    it.await_shards("job-cancel", 1)
    request_cancel(it.service_dir, "job-cancel")
    states = _await_terminal(it.service_dir, ["job-cancel"])
    it.expect(states, {"job-cancel": "CANCELLED"})
    if not it.journal("job-cancel").exists():
        it.violations.append("cancel destroyed the shard journal")


def _run_drain_sigterm(it: _Iteration) -> None:
    """SIGTERM drains gracefully: exit 3, job RETRYING, restart resumes."""
    server = it.serve(idle_exit=60)
    it.submit("job-drain")
    it.await_shards("job-drain", 1)
    server.send_signal(signal.SIGTERM)
    code = server.wait(timeout=60)
    if code != EXIT_INTERRUPTED:
        it.violations.append(
            f"drained server exited {code}, want {EXIT_INTERRUPTED}")
    jobs = replay_jobs(it.service_dir / "jobs.wal")
    drained = jobs.get("job-drain")
    if drained is None or drained.state not in ("RETRYING", "RUNNING"):
        it.violations.append(
            "drained job not held resumable "
            f"(state: {drained.state if drained else 'missing'})")
    it.serve()
    states = _await_terminal(it.service_dir, ["job-drain"])
    it.expect(states, {"job-drain": "DONE"})
    it.check_identity("job-drain")


_SCENARIO_RUNNERS = {
    "kill-mid-job": _run_kill_mid_job,
    "kill-mid-fleet": _run_kill_mid_fleet,
    "kill-before-pickup": _run_kill_before_pickup,
    "overload-reject": _run_overload_reject,
    "deadline-expiry": _run_deadline_expiry,
    "retry-quarantine": _run_retry_quarantine,
    "cancel-mid-job": _run_cancel_mid_job,
    "drain-sigterm": _run_drain_sigterm,
}


# ----------------------------------------------------------------- the soak


def _baseline(root: Path, dump_path: str) -> bytes:
    """Canonical bytes of the job run on an undisturbed service."""
    service_dir = root / "baseline"
    server = _start_server(service_dir)
    try:
        submit_job(service_dir, _spec("job-baseline", dump_path))
        states = _await_terminal(service_dir, ["job-baseline"])
        if states.get("job-baseline") != "DONE":
            raise RuntimeError(f"baseline job did not complete: {states}")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    report = load_report_json(service_dir / "jobs" / "job-baseline" / "report.json")
    if not report["recovered_keys"]:
        raise RuntimeError("baseline job recovered no keys")
    return canonical_report_bytes(report)


def _acceptance(iterations: list[dict]) -> dict:
    """The claims ``ROBUST_service.json`` exists to certify."""

    def ran(scenario: str) -> list[dict]:
        return [it for it in iterations if it["scenario"] == scenario]

    return {
        "iterations_run": len(iterations),
        "zero_violations": all(not it["violations"] for it in iterations),
        "zero_lost_jobs": all(not it["lost_jobs"] for it in iterations),
        "zero_duplicate_side_effects": all(
            it["duplicate_side_effects"] == 0 for it in iterations),
        "all_resumed_byte_identical": all(
            it["byte_identical"] for it in iterations),
        # Each failure mode must actually have fired — a soak that never
        # SIGKILLs a server proves nothing about crash recovery.
        "kill_exercised": any(it["kills"] > 0 for it in iterations),
        "drain_exercised": any(
            it["terminal_states"].get("DONE") for it in ran("drain-sigterm")),
        "deadline_exercised": any(
            it["terminal_states"].get("EXPIRED") for it in ran("deadline-expiry")),
        "rejection_exercised": any(
            it["jobs_rejected"] > 0 for it in iterations),
        "quarantine_exercised": any(
            it["terminal_states"].get("FAILED") for it in ran("retry-quarantine")),
        "cancel_exercised": any(
            it["terminal_states"].get("CANCELLED") for it in ran("cancel-mid-job")),
    }


def service_soak(rotations: int = DEFAULT_ROTATIONS, seed: int = 5,
                 on_progress=None) -> dict:
    """Full soak: scenario rotations plus the acceptance digest."""
    results: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="service-soak-") as tmp_name:
        root = Path(tmp_name)
        dump, master, _ = synthetic_dump(bit_error_rate=0.0, seed=seed)
        dump_path = str(root / "dump.bin")
        dump.save(dump_path)
        baseline = _baseline(root, dump_path)

        for index in range(rotations * len(SCENARIOS)):
            scenario = SCENARIOS[index % len(SCENARIOS)]
            it = _Iteration(index, scenario, root, dump_path, baseline)
            try:
                _SCENARIO_RUNNERS[scenario](it)
            except Exception as exc:  # crash-only: nothing may escape
                it.violations.append(f"exception escaped the harness: {exc!r}")
            finally:
                it.reap()
            entry = it.record()
            results.append(entry)
            if on_progress is not None:
                on_progress(entry)

    record = {
        "schema": SERVICE_SCHEMA,
        "seed": seed,
        "n_shards": N_SHARDS,
        "scan_workers": SCAN_WORKERS,
        "rotations": rotations,
        "repro_command": (
            f"PYTHONPATH=src python -m benchmarks.service_soak "
            f"--seed {seed} --rotations {rotations}"),
        "iterations": results,
        "acceptance": _acceptance(results),
    }
    errors = validate_service_record(record)
    if errors:
        raise ValueError(
            "service soak produced an invalid record: " + "; ".join(errors))
    return record


def validate_service_record(record: dict) -> list[str]:
    """Schema check for a ``robust-service/v1`` record; returns problems."""
    errors: list[str] = []
    if record.get("schema") != SERVICE_SCHEMA:
        errors.append(f"schema is {record.get('schema')!r}, want {SERVICE_SCHEMA!r}")
    for field in ("seed", "n_shards", "scan_workers", "rotations"):
        if not isinstance(record.get(field), int):
            errors.append(f"{field} must be an int")
    if not isinstance(record.get("repro_command"), str):
        errors.append("repro_command must be a string")
    iterations = record.get("iterations")
    if not isinstance(iterations, list) or not iterations:
        return errors + ["iterations must be a non-empty list"]
    for index, entry in enumerate(iterations):
        for field, kind in _ITERATION_FIELDS.items():
            value = entry.get(field)
            ok = isinstance(value, kind) or (kind is float and isinstance(value, int))
            if kind is int and isinstance(value, bool):
                ok = False
            if not ok:
                errors.append(f"iterations[{index}].{field} must be {kind.__name__}")
        if entry.get("scenario") not in SCENARIOS:
            errors.append(f"iterations[{index}].scenario is not a known scenario")
        for violation in entry.get("violations", ()):
            if not isinstance(violation, str):
                errors.append(f"iterations[{index}] has a non-string violation")
    acceptance = record.get("acceptance")
    if not isinstance(acceptance, dict):
        errors.append("acceptance must be a dict")
    else:
        if not isinstance(acceptance.get("iterations_run"), int):
            errors.append("acceptance.iterations_run must be an int")
        for field in _ACCEPTANCE_BOOLS:
            if not isinstance(acceptance.get(field), bool):
                errors.append(f"acceptance.{field} must be a bool")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="ROBUST_service.json")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--rotations", type=int, default=None)
    parser.add_argument("--smoke", "--quick", action="store_true",
                        dest="smoke", help="one scenario rotation for CI")
    args = parser.parse_args(argv)
    rotations = args.rotations or (1 if args.smoke else DEFAULT_ROTATIONS)

    def progress(entry: dict) -> None:
        status = "ok" if not entry["violations"] else "VIOLATION"
        states = ",".join(f"{state}:{count}" for state, count
                          in sorted(entry["terminal_states"].items()))
        print(
            f"[{entry['iteration'] + 1:3d}] {entry['scenario']:<18} "
            f"kills={entry['kills']} servers={entry['server_starts']} "
            f"{states:<24} {entry['seconds']:5.1f}s {status}",
            flush=True,
        )

    record = service_soak(rotations=rotations, seed=args.seed,
                          on_progress=progress)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n",
                                 encoding="utf-8")
    acceptance = record["acceptance"]
    print(f"wrote {args.output}: {acceptance}")
    ok = all(acceptance[field] for field in _ACCEPTANCE_BOOLS)
    if not ok:
        print(f"soak FAILED — reproduce with: {record['repro_command']}",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
