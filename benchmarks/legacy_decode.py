"""The dense belief-propagation decoder, frozen in time.

:func:`legacy_decode_schedules` restores the decode hot path exactly as
it shipped before the residual-scheduled rewrite: one dense sweep over
*every* check of *every* table per iteration, per-level copying
Walsh–Hadamard butterflies, float64 messages, full posterior recompute
each sweep, and batch-total (not per-table) stagnation tracking — the
code that spent 69.9 s in the decoded rung at BER 0.024.

Keeping the old code importable (rather than checking out an old
commit) lets ``benchmarks/decode_harness.py`` measure the speedup *and*
assert identical recovered tables and identical abstain decisions in a
single process, on identical inputs.  Only the structural pieces whose
semantics are pinned by their own tests (the constraint graph, the
channel priors) are imported from the live module.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attack.decode import (
    ChannelModel,
    DecodeResult,
    DecodeState,
    build_constraint_graph,
    context_digest,
)
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceededError

_LEGACY_VALUE_BITS = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)


def _legacy_byte_priors(
    observed: np.ndarray,
    channel: ChannelModel,
    known: np.ndarray | None = None,
) -> np.ndarray:
    """The seed prior computation: full broadcast, no lookup table.

    Produces bit-identical values to the live :func:`byte_priors` (the
    rewrite only tabulates this exact expression), but pays the
    ``(batch, n_bytes, 256, 8)`` float64 broadcast the seed paid.
    """
    observed = np.asarray(observed, dtype=np.uint8)
    n_bytes = observed.shape[-1]
    obs_bits = np.unpackbits(observed, axis=-1).reshape(*observed.shape, 8)
    p_at, p_off = channel.flip_probabilities(n_bytes)
    at_ground = obs_bits == channel.ground_bits(n_bytes)
    p_flip = np.where(at_ground, p_at, p_off)
    match = _LEGACY_VALUE_BITS[(None,) * observed.ndim] == obs_bits[..., None, :]
    prior_log = np.where(
        match, np.log1p(-p_flip)[..., None, :], np.log(p_flip)[..., None, :]
    ).sum(axis=-1)
    if known is not None:
        prior_log = np.where(np.asarray(known, dtype=bool)[..., None], prior_log, 0.0)
    return prior_log


def _legacy_wht(values: np.ndarray) -> np.ndarray:
    """The seed Walsh–Hadamard transform: float64, copies per level."""
    shape = values.shape
    out = np.ascontiguousarray(values, dtype=np.float64).reshape(-1, 256).copy()
    half = 1
    while half < 256:
        out = out.reshape(-1, 256 // (2 * half), 2, half)
        low = out[:, :, 0, :].copy()
        high = out[:, :, 1, :].copy()
        out[:, :, 0, :] = low + high
        out[:, :, 1, :] = low - high
        out = out.reshape(-1, 256)
        half *= 2
    return out.reshape(shape)


def legacy_decode_schedules(
    observed: np.ndarray,
    key_bits: int,
    channel: ChannelModel,
    known: np.ndarray | None = None,
    max_iters: int = 72,
    damping: float = 0.2,
    on_progress=None,
    deadline: "Deadline | float | None" = None,
    state: DecodeState | None = None,
    beat_every: int = 4,
    stall_sweeps: int = 8,
) -> DecodeResult:
    """Dense sum-product decode, verbatim from the pre-rewrite module."""
    graph = build_constraint_graph(key_bits)
    observed = np.asarray(observed, dtype=np.uint8)
    squeeze = observed.ndim == 1
    if squeeze:
        observed = observed[None, :]
        if known is not None:
            known = np.asarray(known, dtype=bool)[None, :]
    if observed.shape[-1] != graph.n_vars:
        raise ValueError(
            f"expected {graph.n_vars}-byte tables for AES-{key_bits}, "
            f"got {observed.shape[-1]}"
        )
    if not 0.0 <= damping < 1.0:
        raise ValueError("damping must lie in [0, 1)")
    deadline = Deadline.coerce(deadline)
    batch = observed.shape[0]
    digest = context_digest(observed, known, channel, key_bits, damping)

    prior_log = _legacy_byte_priors(observed, channel, known)  # (B, V, 256)
    n_checks, n_edges = graph.n_checks, graph.n_edges
    if (
        state is not None
        and state.digest == digest
        and state.messages.shape == (batch, n_checks, 3, 256)
    ):
        cv = state.messages.astype(np.float64, copy=True)
        start_iteration = int(state.iteration)
    else:
        cv = np.full((batch, n_checks, 3, 256), 1.0 / 256.0, dtype=np.float64)
        start_iteration = 0
    cv_log = np.log(cv)

    rows = np.arange(n_checks)
    hard = observed.copy()
    iterations = start_iteration
    converged = np.zeros(batch, dtype=bool)
    syndrome_weight = np.full(batch, n_checks, dtype=np.int64)

    def syndrome_of(tables: np.ndarray) -> np.ndarray:
        t = tables[:, graph.t_idx]
        s = tables[:, graph.s_idx]
        p = tables[:, graph.p_idx]
        residue = t ^ s ^ graph.fwd_lut[rows[None, :], p]
        return (residue != 0).sum(axis=1)

    def posteriors() -> np.ndarray:
        padded = np.concatenate(
            [cv_log.reshape(batch, n_edges, 256), np.zeros((batch, 1, 256))], axis=1
        )
        return prior_log + padded[:, graph.var_in_edges, :].sum(axis=2)

    posterior_log = posteriors()
    best_total_syndrome = math.inf
    stagnant_sweeps = 0
    for iteration in range(start_iteration, max_iters):
        hard = posterior_log.argmax(axis=2).astype(np.uint8)
        syndrome_weight = syndrome_of(hard)
        converged = syndrome_weight == 0
        if converged.all():
            break
        total = int(syndrome_weight.sum())
        if total < best_total_syndrome:
            best_total_syndrome = total
            stagnant_sweeps = 0
        else:
            stagnant_sweeps += 1
            if stall_sweeps and stagnant_sweeps >= stall_sweeps:
                break
        if deadline is not None and deadline.expired:
            error = DeadlineExceededError(
                deadline.total_seconds, context=f"schedule decode sweep {iteration}"
            )
            error.decode_state = DecodeState(  # type: ignore[attr-defined]
                iteration=iteration, messages=cv.copy(), digest=digest
            )
            raise error
        if on_progress is not None and iteration % max(1, beat_every) == 0:
            on_progress()
        # Variable→check messages: posterior with own edge divided out.
        vc_log = posterior_log[:, graph.edge_var, :].reshape(
            batch, n_checks, 3, 256
        ) - cv_log
        vc_log -= vc_log.max(axis=-1, keepdims=True)
        vc = np.exp(vc_log)
        vc /= vc.sum(axis=-1, keepdims=True)
        # Prev operand enters the XOR in its transformed domain.
        vc_p = np.take_along_axis(vc[:, :, 2, :], graph.inv_lut[None, :, :], axis=2)
        w_t = _legacy_wht(vc[:, :, 0, :])
        w_s = _legacy_wht(vc[:, :, 1, :])
        w_p = _legacy_wht(vc_p)
        # XOR convolution: pointwise product in the WHT domain.
        to_t = _legacy_wht(w_s * w_p)
        to_s = _legacy_wht(w_t * w_p)
        to_p_check = _legacy_wht(w_t * w_s)
        to_p = np.take_along_axis(to_p_check, graph.fwd_lut[None, :, :], axis=2)
        fresh = np.stack([to_t, to_s, to_p], axis=2)
        np.clip(fresh, 1e-300, None, out=fresh)
        fresh /= fresh.sum(axis=-1, keepdims=True)
        cv = damping * cv + (1.0 - damping) * fresh
        cv /= cv.sum(axis=-1, keepdims=True)
        cv_log = np.log(cv)
        posterior_log = posteriors()
        iterations = iteration + 1

    shifted = posterior_log - posterior_log.max(axis=-1, keepdims=True)
    posterior = np.exp(shifted)
    posterior /= posterior.sum(axis=-1, keepdims=True)
    entropy = -(posterior * np.log2(np.clip(posterior, 1e-300, None))).sum(axis=-1)
    return DecodeResult(
        tables=hard,
        converged=converged,
        iterations=iterations,
        syndrome_weight=syndrome_weight.astype(np.int64),
        posterior_entropy=entropy.mean(axis=-1),
        certainty=posterior.max(axis=-1).mean(axis=-1),
    )
