"""§III-C — the DDR4 cold boot attack: recovery and scan performance.

Regenerates the paper's attack results on a scaled dump: the XTS master
key is recovered from a frozen, transplanted, doubly-scrambled DDR4
image; and the scan throughput is measured and extrapolated against the
paper's AES-NI numbers (100 MB/core in 2 h; 8 GB on 8 cores in 21 h).
The absolute rates differ (Python + fingerprint join vs C + AES-NI brute
force); the reproducible shape is that recovery succeeds under the
paper's physical conditions and that scan time scales linearly with
dump size.
"""

import pytest

from repro.attack.aes_search import AesKeySearch
from repro.attack.keymine import keys_matrix, mine_scrambler_keys
from repro.attack.pipeline import AttackConfig, Ddr4ColdBootAttack
from repro.dram.image import MemoryImage

#: The paper's reported scan rate: 100 MB per core in 2 hours.
PAPER_MB_PER_HOUR_PER_CORE = 50.0


@pytest.fixture(scope="module")
def window_candidates(ddr4_scan_window):
    """Scrambler keys mined once from the scan window, shared by the
    stage-level benchmarks (the end-to-end tests time their own mining)."""
    window, _ = ddr4_scan_window
    return mine_scrambler_keys(window)


def test_attack_recovers_master_key(benchmark, ddr4_scan_window):
    """The headline §III-C result, timed end-to-end.

    The scan is linear in bytes, so the timed region covers a fixed
    2 MiB window of the 16 MiB dump (the window the key table lives in)
    — same scan work as the seed benchmark, 8x the simulated machine.
    """
    window, true_master = ddr4_scan_window
    attack = Ddr4ColdBootAttack()
    master = benchmark.pedantic(
        lambda: attack.recover_xts_master_key(window), rounds=1, iterations=1
    )
    assert master == true_master
    print(f"\nrecovered 64-byte XTS master key from a {len(window) >> 20} MiB "
          f"window of a cold boot dump: {master.hex()[:24]}...")


def test_scan_throughput_and_extrapolation(benchmark, ddr4_scan_window):
    """Measured MB/h for the full pipeline, vs the paper's AES-NI rate."""
    window, _ = ddr4_scan_window
    attack = Ddr4ColdBootAttack()
    report = benchmark.pedantic(lambda: attack.run(window), rounds=1, iterations=1)
    print(f"\n{report.summary()}")
    rate = report.scan_rate_mb_per_hour
    print(f"this implementation: {rate:.0f} MB/h on one core "
          f"(paper, AES-NI brute force: {PAPER_MB_PER_HOUR_PER_CORE:.0f} MB/h/core)")
    full_dimm_hours = (8 * 1024) / rate
    print(f"extrapolated 8 GB DIMM scan: {full_dimm_hours:.1f} h on one core "
          f"(paper: 21 h on 8 cores)")
    assert report.recovered_keys, "attack must find the schedules"


def test_search_stage_throughput(benchmark, ddr4_scan_window, window_candidates):
    """The AES-search stage alone (mining excluded), for scaling studies."""
    window, _ = ddr4_scan_window
    candidates = window_candidates
    search = AesKeySearch(keys_matrix(candidates), key_bits=256)
    hits = benchmark.pedantic(lambda: search.find_hits(window), rounds=1, iterations=1)
    print(f"\nsearch stage: {len(candidates)} candidate keys x "
          f"{window.n_blocks} blocks -> {len(hits)} hits")
    assert hits


def test_scan_scales_linearly_with_dump_size(benchmark, ddr4_scan_window, window_candidates):
    """'The task is fully parallelizable' — cost is linear in blocks."""
    import time

    window, _ = ddr4_scan_window
    search = AesKeySearch(
        keys_matrix(window_candidates), key_bits=256, extension_radius_blocks=0
    )

    def timed(fraction: float) -> float:
        size = int(len(window) * fraction) // 64 * 64
        sub = MemoryImage(window.data[:size])
        start = time.perf_counter()
        search.find_hits(sub)
        return time.perf_counter() - start

    def ratio() -> float:
        return timed(1.0) / max(timed(0.5), 1e-9)

    observed = benchmark.pedantic(ratio, rounds=1, iterations=1)
    print(f"\ntime ratio full/half dump: {observed:.2f} (linear => ~2)")
    assert 1.3 < observed < 3.5
