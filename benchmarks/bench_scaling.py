"""Scaling behaviour of the attack — context for the §III-C projections.

The paper extrapolates from 100 MB/core to 8 GB DIMMs because its scan
is linear and parallel.  These benches measure the same two scaling
axes for this implementation: dump size (linear) and candidate-key
count (sub-linear, thanks to the fingerprint join), plus the sharded
scan's consistency.
"""

import time

import pytest

from repro.attack.aes_search import AesKeySearch
from repro.attack.keymine import keys_matrix, mine_scrambler_keys
from repro.attack.parallel import parallel_recover_keys
from repro.attack.sweep import synthetic_dump
from repro.dram.image import MemoryImage


@pytest.fixture(scope="module")
def prepared():
    dump, master, _ = synthetic_dump(bit_error_rate=0.0, n_blocks=3 * 4096, seed=71)
    candidates = mine_scrambler_keys(dump)
    return dump, master, keys_matrix(candidates)


def test_scaling_with_dump_size(benchmark, prepared):
    """Search time grows ~linearly in blocks (paper: parallelise away)."""
    dump, _, keys = prepared
    search = AesKeySearch(keys, key_bits=256, extension_radius_blocks=0)

    def timed(fraction):
        size = int(dump.n_blocks * fraction) * 64
        sub = MemoryImage(dump.data[:size])
        start = time.perf_counter()
        search.find_hits(sub)
        return time.perf_counter() - start

    def measure():
        return {f: timed(f) for f in (0.25, 0.5, 1.0)}

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nsearch time vs dump fraction:", {k: f"{v:.2f}s" for k, v in times.items()})
    ratio = times[1.0] / max(times[0.25], 1e-9)
    assert 2.0 < ratio < 8.0  # ~4x expected for 4x the blocks


def test_scaling_with_key_count(benchmark, prepared):
    """The join keeps key-count cost mild (brute force would be linear)."""
    dump, _, keys = prepared

    def timed(n_keys):
        search = AesKeySearch(keys[:n_keys].copy(), key_bits=256, extension_radius_blocks=0)
        start = time.perf_counter()
        search.find_hits(dump)
        return time.perf_counter() - start

    def measure():
        return {n: timed(n) for n in (512, 2048, keys.shape[0])}

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nsearch time vs candidate keys:", {k: f"{v:.2f}s" for k, v in times.items()})
    growth = times[keys.shape[0]] / max(times[512], 1e-9)
    keys_growth = keys.shape[0] / 512
    # Far below proportional growth: the join is per-key O(1) dict work.
    assert growth < keys_growth


def test_sharded_equals_monolithic(benchmark, prepared):
    """Sharding changes wall-clock structure, never results."""
    dump, master, keys = prepared

    def both():
        mono = AesKeySearch(keys.copy(), key_bits=256).recover_keys(dump)
        sharded = parallel_recover_keys(dump, key_bits=256, workers=1, n_shards=6)
        return {r.master_key for r in mono}, {r.master_key for r in sharded}

    mono, sharded = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nmonolithic {len(mono)} keys, sharded {len(sharded)} keys")
    assert master[:32] in mono and master[:32] in sharded
    assert master[32:] in mono and master[32:] in sharded
