"""The seed machine data path, frozen in time: the harness baseline.

:class:`LegacyMemoryController` restores the controller's read/write
loops exactly as they shipped before the vectorisation PR — one Python
iteration per 64-byte block, a scalar keystream lookup per block, and a
``memoryview(bytes(data))`` defensive copy of every payload.
:func:`legacy_warm_key_pool` generates a scrambler's whole key pool the
seed way, one key at a time through the bit-at-a-time LFSR clocking in
``_generate_key``.  :func:`legacy_apply_decay` is the seed decay step:
eight float32 Bernoulli draws per byte and ``np.unpackbits`` counting.

Keeping the old code importable (rather than checking out an old
commit) lets ``benchmarks/machine_harness.py`` measure the speedup
*and* assert byte-identical scrambled contents and dumps in a single
process, on identical inputs.
"""

from __future__ import annotations

import numpy as np

from repro.controller.controller import BusTransaction, MemoryController
from repro.scrambler.base import ScramblerModel
from repro.util.blocks import BLOCK_SIZE


class LegacyMemoryController(MemoryController):
    """Seed-era controller: per-block Python loops on the data path."""

    def write(self, physical_address: int, data: bytes) -> None:
        """Write bytes at any alignment (read-modify-write of edge blocks)."""
        if physical_address < 0:
            raise ValueError("address must be non-negative")
        offset = physical_address % BLOCK_SIZE
        cursor = physical_address - offset
        payload = memoryview(bytes(data))
        consumed = 0
        while consumed < len(data):
            take = min(BLOCK_SIZE - offset, len(data) - consumed)
            module, local = self._route(cursor)
            stream = self._block_keystream(cursor)
            if take == BLOCK_SIZE:
                plain = np.frombuffer(payload[consumed : consumed + take], dtype=np.uint8)
                wire = (plain ^ stream).tobytes()
            else:
                # Partial block: merge with the block's current plaintext.
                raw = np.frombuffer(module.raw_read(local, BLOCK_SIZE), dtype=np.uint8)
                plain = raw ^ stream
                plain = plain.copy()
                plain[offset : offset + take] = np.frombuffer(
                    payload[consumed : consumed + take], dtype=np.uint8
                )
                wire = (plain ^ stream).tobytes()
            module.raw_write(local, wire)
            if self._trace_bus:
                self.bus_trace.append(BusTransaction("write", cursor, wire))
            consumed += take
            cursor += BLOCK_SIZE
            offset = 0

    def read(self, physical_address: int, length: int) -> bytes:
        """Read bytes at any alignment through the descrambler/decryptor."""
        if physical_address < 0 or length < 0:
            raise ValueError("address and length must be non-negative")
        offset = physical_address % BLOCK_SIZE
        cursor = physical_address - offset
        out = bytearray()
        remaining = length
        while remaining > 0:
            take = min(BLOCK_SIZE - offset, remaining)
            module, local = self._route(cursor)
            wire = module.raw_read(local, BLOCK_SIZE)
            if self._trace_bus:
                self.bus_trace.append(BusTransaction("read", cursor, wire))
            stream = self._block_keystream(cursor)
            plain = np.frombuffer(wire, dtype=np.uint8) ^ stream
            out += plain[offset : offset + take].tobytes()
            remaining -= take
            cursor += BLOCK_SIZE
            offset = 0
        return bytes(out)


def legacy_warm_key_pool(scrambler: ScramblerModel, channel: int) -> np.ndarray:
    """Generate a channel's full key pool the seed way: one key at a time.

    Each key clocks the generation's LFSR bit by bit inside
    ``_generate_key``; the keys also land in the scalar ``key_for``
    cache, so a subsequent legacy fill/dump pays only the per-block
    Python loop, not key generation — mirroring the seed's behaviour
    after its first pass over an address range.
    """
    pool = np.empty((scrambler.keys_per_channel, BLOCK_SIZE), dtype=np.uint8)
    for index in range(scrambler.keys_per_channel):
        key = scrambler._generate_key(channel, index)
        scrambler._key_cache[(channel, index)] = key
        pool[index] = np.frombuffer(key, dtype=np.uint8)
    return pool


#: Seed chunking constant, kept for exact reproduction of the old loop.
LEGACY_DECAY_CHUNK_BYTES = 1 << 20


def legacy_apply_decay(
    data: np.ndarray,
    ground: np.ndarray,
    flip_probability: float,
    rng: np.random.Generator,
) -> int:
    """The seed decay step: a dense per-bit Bernoulli draw per chunk."""
    if data.shape != ground.shape:
        raise ValueError("data and ground state must have the same shape")
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError(f"flip probability out of range: {flip_probability}")
    if flip_probability == 0.0:
        return 0
    flipped = 0
    n = len(data)
    for start in range(0, n, LEGACY_DECAY_CHUNK_BYTES):
        stop = min(n, start + LEGACY_DECAY_CHUNK_BYTES)
        chunk = data[start:stop]
        vulnerable = chunk ^ ground[start:stop]
        if flip_probability >= 1.0:
            mask = vulnerable
        else:
            raw = rng.random((stop - start) * 8, dtype=np.float32) < flip_probability
            mask = np.packbits(raw) & vulnerable
        chunk ^= mask
        flipped += int(np.unpackbits(mask).sum())
    return flipped
