"""§III-B — scrambler-key litmus tests and key mining (Key Idea 1).

The paper's claims: the byte-pair invariants identify scrambler keys in
dumps; all keys can be mined from under 16 MB of a loaded system's
memory; mining still works through a second scrambler and with decay.
"""

import numpy as np
import pytest

from repro.attack.keymine import mine_scrambler_keys
from repro.attack.litmus import key_litmus_mismatch_bits, litmus_pass_mask
from repro.dram.image import MemoryImage
from repro.scrambler.ddr4 import Ddr4Scrambler
from repro.util.rng import SplitMix64


def test_litmus_scan_throughput(benchmark):
    """Vectorised litmus scan rate over a 16 MiB image (MB/s reported)."""
    data = SplitMix64(1).next_bytes(16 << 20)
    matrix = np.frombuffer(data, dtype=np.uint8).reshape(-1, 64)
    result = benchmark(lambda: key_litmus_mismatch_bits(matrix))
    assert len(result) == (16 << 20) // 64


def test_mining_from_under_16mb(benchmark, ddr4_scan_window):
    """All keys needed for the attack come from <16 MB of dump.

    Mining a 2 MiB window of the 16 MiB dump proves the claim a
    fortiori — and keeps the timed work constant as the simulated
    machine grows.
    """
    window, _ = ddr4_scan_window
    candidates = benchmark.pedantic(
        lambda: mine_scrambler_keys(window, scan_limit_bytes=16 << 20),
        rounds=1,
        iterations=1,
    )
    print(f"\nmined {len(candidates)} candidates from a "
          f"{len(window) >> 20} MiB window of a cold-boot dump (limit 16 MiB)")
    print(f"top frequencies: {[c.count for c in candidates[:8]]}")
    # The pool should approach the scrambler's 4096 keys (zero pages do
    # not cover every key index in a small dump, decay costs a few).
    assert len(candidates) >= 3000


def test_mining_through_second_scrambler(benchmark, ddr4_cold_boot_dump):
    """§III-B: 'an attacker does not require a machine with a disabled
    scrambler' — the dump here passed through TWO scramblers and the
    litmus mask still fires on thousands of (combined) keys."""
    dump, _ = ddr4_cold_boot_dump

    mask = benchmark(lambda: litmus_pass_mask(dump.blocks_matrix(), tolerance_bits=16))
    print(f"\nlitmus-passing blocks in double-scrambled dump: {int(mask.sum())}")
    assert int(mask.sum()) > 5000


def test_litmus_false_positive_rate(benchmark):
    """Random data essentially never passes: measured FP rate is 0."""
    data = SplitMix64(7).next_bytes(4 << 20)

    def count_false_positives():
        return int(litmus_pass_mask(data, tolerance_bits=16).sum())

    false_positives = benchmark.pedantic(count_false_positives, rounds=1, iterations=1)
    print(f"\nfalse positives in 4 MiB of random data: {false_positives}")
    assert false_positives == 0
