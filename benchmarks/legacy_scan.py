"""The seed scan, frozen in time: the benchmark harness's baseline.

:class:`SeedAesKeySearch` restores the hot paths exactly as they
shipped before the vectorisation PR — the Python dict fingerprint join
(with its band ``.copy().view(uint16)`` double-copy), the per-round
verification loop, the pure-Python per-ballot
``reconstruct_schedule``/``expand_key`` recovery machinery, the
popcount-table region scoring, and the word-list greedy schedule
repair.  :func:`legacy_recover_keys` likewise reproduces the seed
dispatch — pickling every shard's bytes and the whole key matrix into
each task — and mines with :func:`seed_mine_scrambler_keys`, the dict
walk + popcount-table merge the vectorised miner replaced.

Keeping the old code importable (rather than checking out an old
commit) lets ``benchmarks/harness.py`` measure the speedup *and* assert
byte-identical results in a single process, on identical inputs.
"""

from __future__ import annotations

import numpy as np

from repro.attack.aes_search import (
    AesKeySearch,
    AesVariant,
    RecoveredAesKey,
    ScheduleHit,
    _fingerprints,
    _t_forward,
)
from repro.attack.keymine import (
    DEFAULT_SCAN_LIMIT_BYTES,
    CandidateKey,
    _majority_vote,
    keys_matrix,
)
from repro.attack.litmus import key_litmus_mismatch_bits
from repro.attack.parallel import merge_recovered, shard_image
from repro.crypto.aes import batch_next_round_key, expand_key, schedule_bytes
from repro.dram.image import MemoryImage
from repro.resilience.executor import ResilientShardRunner
from repro.util.bits import POPCOUNT_TABLE
from repro.util.blocks import BLOCK_SIZE


def seed_mine_scrambler_keys(
    image: MemoryImage,
    tolerance_bits: int = 16,
    merge_radius_bits: int = 16,
    min_count: int = 1,
    scan_limit_bytes: int | None = DEFAULT_SCAN_LIMIT_BYTES,
) -> list[CandidateKey]:
    """``mine_scrambler_keys`` as the seed shipped it.

    Exact duplicates are grouped with a Python dict walk over every
    passing block, merge distances run through the popcount table, and
    every cluster — singletons included — pays for a full majority
    vote; the costs the vectorised miner removed.
    """
    if merge_radius_bits < 0 or tolerance_bits < 0:
        raise ValueError("tolerances must be non-negative")
    data = image.data
    if scan_limit_bytes is not None:
        data = data[: scan_limit_bytes - scan_limit_bytes % BLOCK_SIZE]
    matrix = np.frombuffer(data, dtype=np.uint8).reshape(-1, BLOCK_SIZE)
    mismatch = key_litmus_mismatch_bits(matrix)
    passing = matrix[mismatch <= tolerance_bits]
    if passing.shape[0] == 0:
        return []

    exact_groups: dict[bytes, int] = {}
    for row in passing:
        value = row.tobytes()
        exact_groups[value] = exact_groups.get(value, 0) + 1

    ordered = sorted(exact_groups.items(), key=lambda item: (-item[1], item[0]))
    rep_array = np.empty((len(ordered), BLOCK_SIZE), dtype=np.uint8)
    n_reps = 0
    counts: list[int] = []
    members: list[list[tuple[bytes, int]]] = []
    for value, count in ordered:
        row = np.frombuffer(value, dtype=np.uint8)
        if n_reps and merge_radius_bits > 0:
            distances = POPCOUNT_TABLE[rep_array[:n_reps] ^ row].sum(axis=1)
            best = int(np.argmin(distances))
            if int(distances[best]) <= merge_radius_bits:
                counts[best] += count
                members[best].append((value, count))
                continue
        rep_array[n_reps] = row
        n_reps += 1
        counts.append(count)
        members.append([(value, count)])

    candidates = []
    for cluster, count in zip(members, counts):
        if count < min_count:
            continue
        rows = []
        for value, value_count in cluster:
            rows.extend([np.frombuffer(value, dtype=np.uint8)] * min(value_count, 32))
        voted = _majority_vote(np.vstack(rows))
        candidates.append(
            CandidateKey(
                key=voted,
                count=count,
                litmus_mismatch_bits=int(
                    key_litmus_mismatch_bits(
                        np.frombuffer(voted, dtype=np.uint8).reshape(1, -1)
                    )[0]
                ),
            )
        )
    candidates.sort(key=lambda c: (-c.count, c.key))
    return candidates


def _seed_repair_observed_table(
    table: np.ndarray,
    key_bits: int,
    max_steps: int = 64,
    known_bytes: np.ndarray | None = None,
) -> np.ndarray:
    """``repair_observed_table`` as the seed shipped it: pure Python.

    Words live in a Python list, residues come from per-word
    ``_t_forward`` calls, and the objective is ``bin(v).count("1")`` —
    the exact costs the vectorised rewrite removed.
    """
    variant = AesVariant(key_bits)
    nk = variant.nk
    n_words = len(table) // 4
    if n_words < nk + 1:
        return table
    words = [
        int.from_bytes(bytes(table[4 * i : 4 * i + 4]), "big") for i in range(n_words)
    ]
    if known_bytes is None:
        word_known = [True] * n_words
    else:
        word_known = [bool(known_bytes[4 * i : 4 * i + 4].all()) for i in range(n_words)]

    def violations(ws: list[int]) -> dict[int, int]:
        out = {}
        for i in range(nk, n_words):
            if not (word_known[i] and word_known[i - nk] and word_known[i - 1]):
                continue
            residue = ws[i] ^ ws[i - nk] ^ _t_forward(ws[i - 1], i, nk)
            if residue:
                out[i] = residue
        return out

    def residue_weight(ws: list[int]) -> int:
        return sum(bin(v).count("1") for v in violations(ws).values())

    for _ in range(max_steps):
        current = violations(words)
        if not current:
            break
        base_weight = residue_weight(words)
        best_trial = None
        best_weight = base_weight
        for i, residue in current.items():
            for target in (i, i - nk):
                trial = words.copy()
                trial[target] ^= residue
                weight = residue_weight(trial)
                if weight < best_weight:
                    best_weight = weight
                    best_trial = trial
            uses_sbox = (i % nk == 0) or (nk > 6 and i % nk == 4)
            if uses_sbox:
                for bit in range(32):
                    trial = words.copy()
                    trial[i - 1] ^= 1 << bit
                    weight = residue_weight(trial)
                    if weight < best_weight:
                        best_weight = weight
                        best_trial = trial
        if best_trial is None:
            break
        words = best_trial
    return np.frombuffer(
        b"".join(w.to_bytes(4, "big") for w in words), dtype=np.uint8
    ).copy()


class SeedAesKeySearch(AesKeySearch):
    """:class:`AesKeySearch` exactly as the seed implemented it."""

    def _span_score(self, expansion: np.ndarray, spans: list[tuple[int, np.ndarray]]) -> int:
        score = 0
        for round_index, span in spans:
            expected = expansion[16 * round_index : 16 * round_index + len(span)]
            score += int(POPCOUNT_TABLE[expected ^ span].sum())
        return score

    def _region_mismatch(
        self, blocks: np.ndarray, base: int, expansion: np.ndarray
    ) -> tuple[int, int]:
        length = len(expansion)
        first = base // BLOCK_SIZE
        last = (base + length - 1) // BLOCK_SIZE
        if first < 0 or last >= blocks.shape[0]:
            return (8 * length, 8 * length)
        mismatch = 0
        counted_bits = 0
        for b in range(first, last + 1):
            lo = max(base, b * BLOCK_SIZE)
            hi = min(base + length, (b + 1) * BLOCK_SIZE)
            expected = expansion[lo - base : hi - base]
            observed = blocks[b, lo - b * BLOCK_SIZE : hi - b * BLOCK_SIZE]
            per_key = POPCOUNT_TABLE[
                (observed ^ self.keys[:, lo - b * BLOCK_SIZE : hi - b * BLOCK_SIZE]) ^ expected
            ].sum(axis=1, dtype=np.int64)
            best = int(per_key.min())
            slice_bits = 8 * (hi - lo)
            if best > 0.35 * slice_bits:
                continue
            mismatch += best
            counted_bits += slice_bits
        if counted_bits < 4 * length:
            return (8 * length, 8 * length)
        return (mismatch, counted_bits)

    def _observed_table(
        self, blocks: np.ndarray, base: int, guess: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        length = len(guess)
        first = base // BLOCK_SIZE
        last = (base + length - 1) // BLOCK_SIZE
        if first < 0 or last >= blocks.shape[0]:
            return None
        pieces = []
        known_pieces = []
        for b in range(first, last + 1):
            lo = max(base, b * BLOCK_SIZE)
            hi = min(base + length, (b + 1) * BLOCK_SIZE)
            observed = blocks[b, lo - b * BLOCK_SIZE : hi - b * BLOCK_SIZE]
            per_key = POPCOUNT_TABLE[
                (observed ^ self.keys[:, lo - b * BLOCK_SIZE : hi - b * BLOCK_SIZE])
                ^ guess[lo - base : hi - base]
            ].sum(axis=1, dtype=np.int64)
            best = int(per_key.min())
            if best > 0.35 * 8 * (hi - lo):
                pieces.append(guess[lo - base : hi - base].copy())
                known_pieces.append(np.zeros(hi - lo, dtype=bool))
            else:
                pieces.append(
                    observed
                    ^ self.keys[int(per_key.argmin()), lo - b * BLOCK_SIZE : hi - b * BLOCK_SIZE]
                )
                known_pieces.append(np.ones(hi - lo, dtype=bool))
        return np.concatenate(pieces), np.concatenate(known_pieces)

    def _candidate_pairs(self, blocks: np.ndarray, offset: int, phase: int) -> np.ndarray:
        span = self.variant.span_bytes
        nk = self.variant.nk
        block_fp = _fingerprints(blocks[:, offset : offset + span], nk, phase)
        key_fp = _fingerprints(self.keys[:, offset : offset + span], nk, phase)
        n_bands = block_fp.shape[1] // 2
        block_bands = (
            block_fp.reshape(-1, n_bands, 2).copy().view(np.uint16).reshape(-1, n_bands)
        )
        key_bands = (
            key_fp.reshape(-1, n_bands, 2).copy().view(np.uint16).reshape(-1, n_bands)
        )
        return self._banded_join_dict(block_bands, key_bands)

    def _verify_pairs(
        self,
        blocks: np.ndarray,
        pairs,
        offset: int,
        phase: int,
        tolerance_bits: int | None = None,
    ) -> list[ScheduleHit]:
        if len(pairs) == 0:
            return []
        tolerance = self.verify_tolerance_bits if tolerance_bits is None else tolerance_bits
        variant = self.variant
        nk = variant.nk
        pair_array = np.asarray(pairs, dtype=np.int64)
        data = (
            blocks[pair_array[:, 0], offset : offset + variant.span_bytes]
            ^ self.keys[pair_array[:, 1], offset : offset + variant.span_bytes]
        )
        window = data[:, : variant.window_bytes]
        check = data[:, variant.window_bytes :]
        hits: list[ScheduleHit] = []
        for round_index in variant.rounds_with_phase(phase):
            predicted = batch_next_round_key(window, nk=nk, first_word_index=4 * round_index)
            mismatch = POPCOUNT_TABLE[predicted ^ check].sum(axis=1, dtype=np.int64)
            for row in np.nonzero(mismatch <= tolerance)[0]:
                hits.append(
                    ScheduleHit(
                        block_index=int(pair_array[row, 0]),
                        key_index=int(pair_array[row, 1]),
                        offset=offset,
                        round_index=round_index,
                        mismatch_bits=int(mismatch[row]),
                        key_bits=variant.key_bits,
                    )
                )
        return hits

    def _recover_from_group(
        self, blocks: np.ndarray, base: int, group: list[ScheduleHit]
    ) -> RecoveredAesKey | None:
        variant = self.variant
        spans: list[tuple[int, np.ndarray]] = []
        for hit in group:
            span = (
                blocks[hit.block_index, hit.offset : hit.offset + variant.span_bytes]
                ^ self.keys[hit.key_index, hit.offset : hit.offset + variant.span_bytes]
            )
            spans.append((hit.round_index, span))

        group_sorted = sorted(zip(group, spans), key=lambda item: item[0].mismatch_bits)
        best_master: bytes | None = None
        best_fraction = 1.0
        best_agreement = 0.0
        schedule_bits = 8 * 4 * variant.total_words

        def consider(ballots: list[tuple[bytes, int]]) -> None:
            nonlocal best_master, best_fraction, best_agreement
            for master, _span_score in sorted(ballots, key=lambda item: item[1])[:8]:
                expansion = np.frombuffer(expand_key(master), dtype=np.uint8)
                mismatch, counted_bits = self._region_mismatch(blocks, base, expansion)
                fraction = mismatch / counted_bits
                if fraction < best_fraction:
                    best_fraction = fraction
                    best_agreement = max(0.0, (counted_bits - mismatch) / schedule_bits)
                    best_master = master

        clearly_clean = min(0.02, self.accept_mismatch_fraction)

        for repair in range(self.repair_bits + 1):
            scored: dict[bytes, int] = {}
            for hit, (round_index, span) in group_sorted:
                for master in self._window_candidates(span, round_index, repair):
                    if master not in scored:
                        expansion = np.frombuffer(expand_key(master), dtype=np.uint8)
                        scored[master] = self._span_score(expansion, spans)
            consider(list(scored.items()))
            if best_master is not None and best_fraction <= clearly_clean:
                break

        if best_master is not None and best_fraction > clearly_clean:
            for _iteration in range(3):
                before = best_fraction
                guess = np.frombuffer(expand_key(best_master), dtype=np.uint8)
                observed = self._observed_table(blocks, base, guess)
                if observed is None:
                    break
                table, known = observed
                table = _seed_repair_observed_table(table, variant.key_bits, known_bytes=known)
                for repair in range(self.repair_bits + 1):
                    scored = {}
                    for round_index in range(0, (variant.total_words - variant.nk) // 4 + 1):
                        lo = 16 * round_index
                        window = table[lo : lo + variant.window_bytes]
                        if len(window) < variant.window_bytes:
                            break
                        if not known[lo : lo + variant.window_bytes].all():
                            continue
                        for master in self._window_candidates(window, round_index, repair):
                            if master not in scored:
                                expansion = np.frombuffer(expand_key(master), dtype=np.uint8)
                                scored[master] = int(
                                    POPCOUNT_TABLE[(expansion ^ table)[known]].sum()
                                )
                    consider(list(scored.items()))
                    if best_fraction <= clearly_clean:
                        break
                if best_fraction <= clearly_clean or best_fraction >= before:
                    break

        if best_master is None or best_fraction > self.accept_mismatch_fraction:
            return None
        expansion = np.frombuffer(expand_key(best_master), dtype=np.uint8)
        votes = sum(
            1
            for round_index, span in spans
            if int(
                POPCOUNT_TABLE[
                    expansion[16 * round_index : 16 * round_index + len(span)] ^ span
                ].sum()
            )
            <= self.accept_mismatch_fraction * 8 * len(span)
        )
        return RecoveredAesKey(
            master_key=best_master,
            key_bits=variant.key_bits,
            votes=votes,
            first_block_index=min(h.block_index for h in group),
            match_fraction=1.0 - best_fraction,
            region_agreement=best_agreement,
            hits=tuple(sorted(group, key=lambda h: (h.block_index, h.offset))),
        )


def _seed_search_shard(
    payload: tuple[bytes, bytes, int],
    shard_offset: int,
    attempt: int,
    in_subprocess: bool,
) -> list[RecoveredAesKey]:
    """Seed worker: the full shard bytes and key matrix arrive pickled."""
    shard_data, keys_blob, key_bits = payload
    keys = np.frombuffer(keys_blob, dtype=np.uint8).reshape(-1, BLOCK_SIZE)
    search = SeedAesKeySearch(keys.copy(), key_bits=key_bits)
    return search.recover_keys(MemoryImage(shard_data))


def legacy_recover_keys(
    dump: MemoryImage,
    key_bits: int = 256,
    workers: int = 1,
    n_shards: int | None = None,
) -> list[RecoveredAesKey]:
    """Mine + sharded scan exactly as the seed dispatched it.

    Every shard task carries a *copy* of its slice of the dump plus the
    whole key matrix through the pickle boundary — the payload cost the
    shared-memory dispatch eliminated.
    """
    candidates = seed_mine_scrambler_keys(dump)
    if not candidates:
        return []
    keys_blob = keys_matrix(candidates).tobytes()
    overlap = schedule_bytes(key_bits) + BLOCK_SIZE
    shards = shard_image(dump, n_shards=n_shards or workers, overlap_bytes=overlap)
    jobs = {
        shard.base_offset: (bytes(shard.image.data), keys_blob, key_bits)
        for shard in shards
    }
    runner = ResilientShardRunner(_seed_search_shard, workers=workers)
    ledger = runner.run(jobs)
    return merge_recovered(
        [(outcome.shard_offset, outcome.result) for outcome in ledger.completed]
    )
