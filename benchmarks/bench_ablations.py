"""Ablations for the design choices DESIGN.md calls out.

Three questions the headline results don't answer:

1. how much does the fingerprint join buy over the paper's literal
   exhaustive search? (our AES-NI substitute had better be worth it);
2. which decay-hardening mechanisms (neighbour extension, bit repair)
   actually carry the recovery at realistic bit error rates?;
3. where does the attack stop working as decay grows — and does that
   boundary sit safely beyond the paper's −25 °C / 5 s operating point?
"""

import time

import pytest

from repro.attack.aes_search import AesKeySearch, exhaustive_hits
from repro.attack.keymine import keys_matrix, mine_scrambler_keys
from repro.attack.pipeline import Ddr4ColdBootAttack
from repro.attack.sweep import ablate_search, synthetic_dump
from repro.dram.image import MemoryImage


def test_ablation_fingerprint_join_speedup(benchmark):
    """Fingerprint join vs the paper's exhaustive per-pair verification."""
    dump, _, scrambler = synthetic_dump(bit_error_rate=0.0, n_blocks=256, table_block=100, seed=9)
    keys = [scrambler.key_for_address(b * 64) for b in range(0, 256, 2)]

    def timed_pair():
        search = AesKeySearch(keys, key_bits=256, extension_radius_blocks=0)
        start = time.perf_counter()
        fast = search.find_hits(dump)
        fast_seconds = time.perf_counter() - start
        start = time.perf_counter()
        slow = exhaustive_hits(dump, search.keys, key_bits=256)
        slow_seconds = time.perf_counter() - start
        return fast, slow, fast_seconds, slow_seconds

    fast, slow, fast_seconds, slow_seconds = benchmark.pedantic(
        timed_pair, rounds=1, iterations=1
    )
    keyset = lambda hits: {(h.block_index, h.key_index, h.offset, h.round_index) for h in hits}
    assert keyset(fast) == keyset(slow), "join must lose nothing"
    speedup = slow_seconds / max(fast_seconds, 1e-9)
    print(f"\nfingerprint join: {fast_seconds:.3f}s vs exhaustive {slow_seconds:.3f}s "
          f"({speedup:.0f}x speedup on 256 blocks x 128 keys; gap widens with size)")
    assert speedup > 3


def test_ablation_decay_hardening(benchmark):
    """Extension + repair carry recovery at the paper's decay level."""
    results = benchmark.pedantic(
        lambda: ablate_search(bit_error_rate=0.008), rounds=1, iterations=1
    )
    print("\nsearch ablation at 0.8% BER (the -25C/5s operating point):")
    by_name = {}
    for result in results:
        print(f"  {result.configuration:14s} recovered={result.keys_recovered} "
              f"master={'yes' if result.master_recovered else 'NO'}")
        by_name[result.configuration] = result
    assert by_name["full"].master_recovered
    # The bare configuration must do no better than the full one.
    assert by_name["bare"].keys_recovered <= by_name["full"].keys_recovered


def test_ablation_decay_boundary(benchmark):
    """Sweep artificial BER: success at the paper's point, graceful
    degradation beyond it."""

    def sweep():
        outcomes = []
        for ber in (0.0, 0.004, 0.008, 0.016):
            dump, master, _ = synthetic_dump(bit_error_rate=ber, seed=11)
            recovered = Ddr4ColdBootAttack().recover_xts_master_key(dump)
            outcomes.append((ber, recovered == master))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nmaster-key recovery vs bit error rate:")
    for ber, ok in outcomes:
        print(f"  BER {100 * ber:5.2f}%: {'recovered' if ok else 'failed'}")
    as_dict = dict(outcomes)
    assert as_dict[0.0] and as_dict[0.004] and as_dict[0.008]


def test_ablation_mining_tolerance(benchmark):
    """Litmus tolerance: too strict rejects decayed key copies entirely;
    the default keeps them (as near-matches the search can repair)."""
    import numpy as np

    from repro.util.bits import POPCOUNT_TABLE

    dump, _, scrambler = synthetic_dump(bit_error_rate=0.008, seed=13)
    truth = np.vstack(
        [np.frombuffer(k, dtype=np.uint8) for k in scrambler.all_keys()]
    )

    def near_matches(tolerance):
        mined = mine_scrambler_keys(dump, tolerance_bits=tolerance, scan_limit_bytes=None)
        count = 0
        for candidate in mined:
            row = np.frombuffer(candidate.key, dtype=np.uint8)
            distances = POPCOUNT_TABLE[truth ^ row].sum(axis=1)
            if int(distances.min()) <= 12:
                count += 1
        return count

    def compare():
        return near_matches(0), near_matches(16)

    strict, tolerant = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nkeys mined within 12 bits of truth: tolerance 0 -> {strict}, "
          f"tolerance 16 -> {tolerant} (pool 4096)")
    assert tolerant > strict
    assert tolerant > 3000
