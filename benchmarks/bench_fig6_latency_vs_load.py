"""Figure 6 — decryption latency of the engines under load.

Regenerates the full sweep: every engine at 1..18 outstanding
back-to-back CAS requests on DDR4-2400, and asserts the figure's shape:
ChaCha8 is flat and fully hidden under the 12.5 ns window at all loads;
AES-128/256 win when the queue is shallow but queue up toward the right
of the figure, AES-128 exposing ≈1.3 ns worst-case; ChaCha12/20 sit at
constant exposure.
"""

import pytest

from repro.engine.queuing import load_sweep, simulate_burst


def test_fig6_sweep(benchmark):
    """Print the Figure 6 series and assert its shape."""
    points = benchmark.pedantic(load_sweep, rounds=1, iterations=1)
    series: dict[str, list] = {}
    for point in points:
        series.setdefault(point.engine, []).append(point)

    print("\nFigure 6: decryption latency (ns) vs outstanding back-to-back CAS")
    header = "engine    " + "".join(f"{n:>6d}" for n in (1, 3, 6, 9, 12, 15, 18))
    print(header)
    for engine, pts in series.items():
        row = {p.outstanding_requests: p.decryption_latency_ns for p in pts}
        print(f"{engine:10s}" + "".join(f"{row[n]:6.2f}" for n in (1, 3, 6, 9, 12, 15, 18)))

    chacha8 = [p.decryption_latency_ns for p in series["ChaCha8"]]
    aes128 = [p.decryption_latency_ns for p in series["AES-128"]]
    # ChaCha8: flat, always hidden.
    assert max(chacha8) - min(chacha8) < 1e-9
    assert all(p.exposed_ns == 0 for p in series["ChaCha8"])
    # AES: monotone growth, crossover, ~1.3 ns worst-case exposure.
    assert aes128 == sorted(aes128)
    assert aes128[0] < chacha8[0] and aes128[-1] > chacha8[-1]
    assert series["AES-128"][-1].exposed_ns == pytest.approx(1.3, abs=0.2)
    assert series["AES-256"][-1].exposed_ns > series["AES-128"][-1].exposed_ns
    # ChaCha12/20: load-independent exposure (0.77 and ~8.9 ns).
    for name, floor in (("ChaCha12", 0.5), ("ChaCha20", 8.0)):
        exposures = {round(p.exposed_ns, 4) for p in series[name]}
        assert len(exposures) == 1 and exposures.pop() > floor


def test_fig6_crossover_point(benchmark):
    """Locate where AES-128 falls behind ChaCha8 (mid-to-late sweep)."""

    def crossover():
        for n in range(1, 19):
            if (
                simulate_burst("AES-128", n).decryption_latency_ns
                > simulate_burst("ChaCha8", n).decryption_latency_ns
            ):
                return n
        return None

    n = benchmark.pedantic(crossover, rounds=1, iterations=1)
    print(f"\nAES-128 falls behind ChaCha8 at {n} outstanding requests")
    assert n is not None and 4 <= n <= 18


def test_fig6_simulation_speed(benchmark):
    """Raw speed of one burst simulation (it's used in sweeps)."""
    benchmark(lambda: simulate_burst("AES-128", 18))
