"""Decay-robustness sweep: adaptive engine vs the frozen seed scan.

The claim this harness certifies — and ``ROBUST_decay.json`` records —
is the tentpole of the error-correcting recovery work: the decoded
stage (belief propagation over the AES key-expansion constraint graph)
recovers keys byte-identical to the planted ground truth at decay
rates at least twice the classical crossover (~0.020), and past its
own envelope it *abstains* — at no swept rate does any pipeline stage
return a wrong key.  The sweep also keeps the earlier adaptive-vs-seed
claims: there are rates where the seed pipeline (fixed litmus 16 /
verify 16 budgets, exactly as :mod:`benchmarks.legacy_scan` freezes
it) recovers nothing while the adaptive engine recovers everything,
and confidence degrades monotonically with the channel.

Run ``python -m benchmarks.robustness`` to regenerate the JSON; the
``--quick`` flag trims the grid for CI smoke, and ``--baseline`` gates
a fresh sweep against a committed artifact — fewer exact keys or any
new spurious key at a shared rate fails the run.  Every record is
checked by :func:`validate_robust_record` before it is written, so a
schema drift fails the sweep rather than poisoning downstream tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks.legacy_scan import legacy_recover_keys
from repro.attack.adaptive import AdaptiveRecoveryEngine
from repro.attack.sweep import synthetic_dump

#: Schema tag for downstream consumers of the JSON artifact.  v2 adds
#: the decoded stage: per-stage wall seconds, decode-table telemetry
#: (tables tried, message-passing sweeps, converged/abstained counts),
#: and the abstain-not-wrong acceptance gates.
ROBUST_SCHEMA = "robust-decay/v2"

#: The sweep grid.  The seed pipeline's cliff sits between 0.008 and
#: 0.012 on the synthetic dump and the classical (vote+repair) ladder's
#: crossover near 0.020; the grid brackets both, covers the decoded
#: stage's byte-exact band beyond 2× the classical crossover, and
#: extends far past every envelope to show abstention rather than
#: wrong answers.
DEFAULT_RATES = (0.002, 0.008, 0.012, 0.016, 0.020, 0.024, 0.032, 0.040,
                 0.056, 0.080, 0.100)

_POINT_FIELDS = {
    "bit_error_rate": float,
    "seed_keys_recovered": int,
    "seed_exact_keys": int,
    "adaptive_keys_recovered": int,
    "adaptive_exact_keys": int,
    "adaptive_spurious_keys": int,
    "estimated_decay_rate": float,
    "decay_source": str,
    "stages_run": list,
    "stage_seconds": dict,
    "confidences": list,
    "max_confidence": float,
    "quarantined_regions": int,
    "decode_tables": int,
    "decode_iterations": int,
    "decode_converged": int,
    "decode_abstained": int,
    "seed_seconds": float,
    "adaptive_seconds": float,
}


def _exact_half_count(recovered_masters: set[bytes], master: bytes) -> int:
    """How many halves of the planted XTS master were recovered exactly."""
    return sum(1 for half in (master[:32], master[32:]) if half in recovered_masters)


def sweep_point(bit_error_rate: float, seed: int = 5, total_work: int = 10) -> dict:
    """Run both pipelines on one synthetic dump and compare outcomes."""
    dump, master, _ = synthetic_dump(bit_error_rate=bit_error_rate, seed=seed)
    truth = {master[:32], master[32:]}

    start = time.perf_counter()
    seed_recovered = legacy_recover_keys(dump)
    seed_seconds = time.perf_counter() - start
    seed_masters = {r.master_key for r in seed_recovered}

    start = time.perf_counter()
    result = AdaptiveRecoveryEngine(total_work=total_work).recover(dump)
    adaptive_seconds = time.perf_counter() - start
    adaptive_masters = {r.master_key for r in result.recovered}
    confidences = sorted((r.confidence for r in result.recovered), reverse=True)
    decode = result.decode or {}

    return {
        "bit_error_rate": bit_error_rate,
        "seed_keys_recovered": len(seed_recovered),
        "seed_exact_keys": _exact_half_count(seed_masters, master),
        "adaptive_keys_recovered": len(result.recovered),
        "adaptive_exact_keys": _exact_half_count(adaptive_masters, master),
        "adaptive_spurious_keys": len(adaptive_masters - truth),
        "estimated_decay_rate": result.estimate.rate,
        "decay_source": result.estimate.source,
        "stages_run": list(result.stages_run),
        "stage_seconds": {k: round(v, 3) for k, v in result.stage_seconds.items()},
        "confidences": confidences,
        "max_confidence": confidences[0] if confidences else 0.0,
        "quarantined_regions": len(result.quarantined),
        "decode_tables": int(decode.get("tables", 0)),
        "decode_iterations": int(decode.get("iterations", 0)),
        "decode_converged": int(decode.get("converged", 0)),
        "decode_abstained": int(decode.get("abstained", 0)),
        "seed_seconds": seed_seconds,
        "adaptive_seconds": adaptive_seconds,
    }


def _acceptance(points: list[dict]) -> dict:
    """The claims the artifact exists to certify, as booleans."""
    crossover = [
        p["bit_error_rate"]
        for p in points
        if p["seed_exact_keys"] == 0 and p["adaptive_exact_keys"] >= 1
    ]
    # Only rates where something was recovered can rank confidences; an
    # abstaining point contributes no key whose calibration could lie.
    ordered = [p for p in sorted(points, key=lambda p: p["bit_error_rate"])
               if p["adaptive_keys_recovered"]]
    confidences = [p["max_confidence"] for p in ordered]
    exact_rates = [p["bit_error_rate"] for p in points
                   if p["adaptive_exact_keys"] == 2 and p["adaptive_spurious_keys"] == 0]
    return {
        # Rates where adaptive recovers a full AES key and the frozen
        # seed path recovers none — the headline robustness win.
        "crossover_rates": crossover,
        "adaptive_beats_seed": bool(crossover),
        # No recovered key may differ from the planted truth by even a
        # bit: robustness must not come at the price of wrong answers.
        "all_keys_byte_exact": all(p["adaptive_spurious_keys"] == 0 for p in points),
        # Calibration: a worse channel must never yield *higher*
        # confidence in what it recovers.
        "confidence_monotone": all(
            later <= earlier + 1e-9
            for earlier, later in zip(confidences, confidences[1:])
        ),
        # The tentpole: full byte-exact recovery survives to at least
        # twice the classical crossover (~0.020) — the decoded stage's
        # contribution over PR 3's ladder.
        "max_full_exact_rate": max(exact_rates, default=0.0),
        "exact_at_twice_classical_crossover": max(exact_rates, default=0.0) >= 0.040,
        # Past every envelope the pipeline abstains instead of guessing:
        # no swept point pairs zero exact keys with a nonzero key count.
        "abstains_not_wrong": all(
            p["adaptive_keys_recovered"] == 0 or p["adaptive_exact_keys"] > 0
            for p in points
        ),
    }


def robustness_sweep(
    rates: tuple[float, ...] = DEFAULT_RATES, seed: int = 5, total_work: int = 10
) -> dict:
    """Full sweep: per-rate comparison points plus the acceptance digest."""
    points = [sweep_point(rate, seed=seed, total_work=total_work) for rate in rates]
    record = {
        "schema": ROBUST_SCHEMA,
        "seed": seed,
        "total_work": total_work,
        "points": points,
        "acceptance": _acceptance(points),
    }
    errors = validate_robust_record(record)
    if errors:
        raise ValueError("robustness sweep produced an invalid record: " + "; ".join(errors))
    return record


def validate_robust_record(record: dict) -> list[str]:
    """Schema check for a ``robust-decay/v2`` record; returns problems."""
    errors: list[str] = []
    if record.get("schema") != ROBUST_SCHEMA:
        errors.append(f"schema is {record.get('schema')!r}, want {ROBUST_SCHEMA!r}")
    for field in ("seed", "total_work"):
        if not isinstance(record.get(field), int):
            errors.append(f"{field} must be an int")
    points = record.get("points")
    if not isinstance(points, list) or not points:
        return errors + ["points must be a non-empty list"]
    for index, point in enumerate(points):
        for field, kind in _POINT_FIELDS.items():
            value = point.get(field)
            ok = isinstance(value, kind) or (kind is float and isinstance(value, int))
            if not ok:
                errors.append(f"points[{index}].{field} must be {kind.__name__}")
        for confidence in point.get("confidences", ()):
            if not isinstance(confidence, (int, float)) or not 0.0 <= confidence <= 1.0:
                errors.append(f"points[{index}] has confidence outside [0, 1]")
    acceptance = record.get("acceptance")
    if not isinstance(acceptance, dict):
        errors.append("acceptance must be a dict")
    else:
        for field in (
            "adaptive_beats_seed",
            "all_keys_byte_exact",
            "confidence_monotone",
            "exact_at_twice_classical_crossover",
            "abstains_not_wrong",
        ):
            if not isinstance(acceptance.get(field), bool):
                errors.append(f"acceptance.{field} must be a bool")
        if not isinstance(acceptance.get("crossover_rates"), list):
            errors.append("acceptance.crossover_rates must be a list")
        if not isinstance(acceptance.get("max_full_exact_rate"), (int, float)):
            errors.append("acceptance.max_full_exact_rate must be a number")
    return errors


def compare_to_baseline(record: dict, baseline: dict) -> list[str]:
    """Regression gate: a fresh sweep must not lose ground on a baseline.

    Rates are matched by value; rates present in only one record are
    ignored (grids may grow).  At every shared rate the fresh sweep
    must recover at least as many exact keys and introduce no spurious
    key the baseline did not have.  Baselines of the retired
    ``robust-decay/v1`` schema are accepted — their points carry the
    shared count fields — so the first v2 run can gate against the v1
    artifact it replaces.
    """
    problems: list[str] = []
    fresh = {p["bit_error_rate"]: p for p in record.get("points", [])}
    for base_point in baseline.get("points", []):
        rate = base_point["bit_error_rate"]
        point = fresh.get(rate)
        if point is None:
            continue
        if point["adaptive_exact_keys"] < base_point["adaptive_exact_keys"]:
            problems.append(
                f"BER {rate}: exact keys fell "
                f"{base_point['adaptive_exact_keys']} -> {point['adaptive_exact_keys']}"
            )
        if point["adaptive_spurious_keys"] > base_point.get("adaptive_spurious_keys", 0):
            problems.append(
                f"BER {rate}: spurious keys rose to {point['adaptive_spurious_keys']}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="ROBUST_decay.json")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="four-point grid for CI smoke runs")
    parser.add_argument("--baseline", default=None,
                        help="committed artifact to gate regressions against")
    args = parser.parse_args(argv)
    rates = (0.002, 0.012, 0.040, 0.080) if args.quick else DEFAULT_RATES
    record = robustness_sweep(rates, seed=args.seed)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    acceptance = record["acceptance"]
    for point in record["points"]:
        print(
            f"BER {point['bit_error_rate']:.3f}: "
            f"seed {point['seed_exact_keys']}/2, "
            f"adaptive {point['adaptive_exact_keys']}/2 exact, "
            f"{point['adaptive_spurious_keys']} spurious "
            f"(confidence {point['max_confidence']:.2f}, "
            f"stages {'+'.join(point['stages_run'])}, "
            f"decode {point['decode_converged']}/{point['decode_tables']} converged)"
        )
    print(f"wrote {args.output}: {acceptance}")
    ok = (
        acceptance["adaptive_beats_seed"]
        and acceptance["all_keys_byte_exact"]
        and acceptance["confidence_monotone"]
        and acceptance["exact_at_twice_classical_crossover"]
        and acceptance["abstains_not_wrong"]
    )
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        problems = compare_to_baseline(record, baseline)
        for problem in problems:
            print(f"REGRESSION: {problem}")
        ok = ok and not problems
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
