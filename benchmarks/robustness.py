"""Decay-robustness sweep: adaptive engine vs the frozen seed scan.

The claim this harness certifies — and ``ROBUST_decay.json`` records —
is the tentpole of the decay-adaptive work: there exist decay rates at
which the seed pipeline (fixed litmus 16 / verify 16 budgets, exactly
as :mod:`benchmarks.legacy_scan` freezes it) recovers *nothing* while
the adaptive engine still recovers full AES keys, byte-identical to
the planted ground truth, with a confidence score that degrades
monotonically as the channel worsens.

Run ``python -m benchmarks.robustness`` to regenerate the JSON; the
``--quick`` flag trims the grid for CI smoke.  Every record is checked
by :func:`validate_robust_record` before it is written, so a schema
drift fails the sweep rather than poisoning downstream tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks.legacy_scan import legacy_recover_keys
from repro.attack.adaptive import AdaptiveRecoveryEngine
from repro.attack.sweep import synthetic_dump

#: Schema tag for downstream consumers of the JSON artifact.
ROBUST_SCHEMA = "robust-decay/v1"

#: The sweep grid.  The seed pipeline's cliff sits between 0.008 and
#: 0.012 on the synthetic dump; the grid brackets it on both sides and
#: extends past it to show graceful (partial, lower-confidence)
#: degradation rather than a second cliff.
DEFAULT_RATES = (0.002, 0.008, 0.012, 0.016, 0.020)

_POINT_FIELDS = {
    "bit_error_rate": float,
    "seed_keys_recovered": int,
    "seed_exact_keys": int,
    "adaptive_keys_recovered": int,
    "adaptive_exact_keys": int,
    "adaptive_spurious_keys": int,
    "estimated_decay_rate": float,
    "decay_source": str,
    "stages_run": list,
    "confidences": list,
    "max_confidence": float,
    "quarantined_regions": int,
    "seed_seconds": float,
    "adaptive_seconds": float,
}


def _exact_half_count(recovered_masters: set[bytes], master: bytes) -> int:
    """How many halves of the planted XTS master were recovered exactly."""
    return sum(1 for half in (master[:32], master[32:]) if half in recovered_masters)


def sweep_point(bit_error_rate: float, seed: int = 5, total_work: int = 6) -> dict:
    """Run both pipelines on one synthetic dump and compare outcomes."""
    dump, master, _ = synthetic_dump(bit_error_rate=bit_error_rate, seed=seed)
    truth = {master[:32], master[32:]}

    start = time.perf_counter()
    seed_recovered = legacy_recover_keys(dump)
    seed_seconds = time.perf_counter() - start
    seed_masters = {r.master_key for r in seed_recovered}

    start = time.perf_counter()
    result = AdaptiveRecoveryEngine(total_work=total_work).recover(dump)
    adaptive_seconds = time.perf_counter() - start
    adaptive_masters = {r.master_key for r in result.recovered}
    confidences = sorted((r.confidence for r in result.recovered), reverse=True)

    return {
        "bit_error_rate": bit_error_rate,
        "seed_keys_recovered": len(seed_recovered),
        "seed_exact_keys": _exact_half_count(seed_masters, master),
        "adaptive_keys_recovered": len(result.recovered),
        "adaptive_exact_keys": _exact_half_count(adaptive_masters, master),
        "adaptive_spurious_keys": len(adaptive_masters - truth),
        "estimated_decay_rate": result.estimate.rate,
        "decay_source": result.estimate.source,
        "stages_run": list(result.stages_run),
        "confidences": confidences,
        "max_confidence": confidences[0] if confidences else 0.0,
        "quarantined_regions": len(result.quarantined),
        "seed_seconds": seed_seconds,
        "adaptive_seconds": adaptive_seconds,
    }


def _acceptance(points: list[dict]) -> dict:
    """The three claims the artifact exists to certify, as booleans."""
    crossover = [
        p["bit_error_rate"]
        for p in points
        if p["seed_exact_keys"] == 0 and p["adaptive_exact_keys"] >= 1
    ]
    ordered = sorted(points, key=lambda p: p["bit_error_rate"])
    confidences = [p["max_confidence"] for p in ordered]
    return {
        # Rates where adaptive recovers a full AES key and the frozen
        # seed path recovers none — the headline robustness win.
        "crossover_rates": crossover,
        "adaptive_beats_seed": bool(crossover),
        # No recovered key may differ from the planted truth by even a
        # bit: robustness must not come at the price of wrong answers.
        "all_keys_byte_exact": all(p["adaptive_spurious_keys"] == 0 for p in points),
        # Calibration: a worse channel must never yield *higher*
        # confidence in what it recovers.
        "confidence_monotone": all(
            later <= earlier + 1e-9
            for earlier, later in zip(confidences, confidences[1:])
        ),
    }


def robustness_sweep(
    rates: tuple[float, ...] = DEFAULT_RATES, seed: int = 5, total_work: int = 6
) -> dict:
    """Full sweep: per-rate comparison points plus the acceptance digest."""
    points = [sweep_point(rate, seed=seed, total_work=total_work) for rate in rates]
    record = {
        "schema": ROBUST_SCHEMA,
        "seed": seed,
        "total_work": total_work,
        "points": points,
        "acceptance": _acceptance(points),
    }
    errors = validate_robust_record(record)
    if errors:
        raise ValueError("robustness sweep produced an invalid record: " + "; ".join(errors))
    return record


def validate_robust_record(record: dict) -> list[str]:
    """Schema check for a ``robust-decay/v1`` record; returns problems."""
    errors: list[str] = []
    if record.get("schema") != ROBUST_SCHEMA:
        errors.append(f"schema is {record.get('schema')!r}, want {ROBUST_SCHEMA!r}")
    for field in ("seed", "total_work"):
        if not isinstance(record.get(field), int):
            errors.append(f"{field} must be an int")
    points = record.get("points")
    if not isinstance(points, list) or not points:
        return errors + ["points must be a non-empty list"]
    for index, point in enumerate(points):
        for field, kind in _POINT_FIELDS.items():
            value = point.get(field)
            ok = isinstance(value, kind) or (kind is float and isinstance(value, int))
            if not ok:
                errors.append(f"points[{index}].{field} must be {kind.__name__}")
        for confidence in point.get("confidences", ()):
            if not isinstance(confidence, (int, float)) or not 0.0 <= confidence <= 1.0:
                errors.append(f"points[{index}] has confidence outside [0, 1]")
    acceptance = record.get("acceptance")
    if not isinstance(acceptance, dict):
        errors.append("acceptance must be a dict")
    else:
        for field in ("adaptive_beats_seed", "all_keys_byte_exact", "confidence_monotone"):
            if not isinstance(acceptance.get(field), bool):
                errors.append(f"acceptance.{field} must be a bool")
        if not isinstance(acceptance.get("crossover_rates"), list):
            errors.append("acceptance.crossover_rates must be a list")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="ROBUST_decay.json")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="three-point grid for CI smoke runs")
    args = parser.parse_args(argv)
    rates = (0.002, 0.012, 0.020) if args.quick else DEFAULT_RATES
    record = robustness_sweep(rates, seed=args.seed)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    acceptance = record["acceptance"]
    for point in record["points"]:
        print(
            f"BER {point['bit_error_rate']:.3f}: "
            f"seed {point['seed_exact_keys']}/2, "
            f"adaptive {point['adaptive_exact_keys']}/2 exact "
            f"(confidence {point['max_confidence']:.2f}, "
            f"stages {'+'.join(point['stages_run'])})"
        )
    print(f"wrote {args.output}: {acceptance}")
    ok = (
        acceptance["adaptive_beats_seed"]
        and acceptance["all_keys_byte_exact"]
        and acceptance["confidence_monotone"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
