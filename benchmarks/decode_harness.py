#!/usr/bin/env python
"""Decode-performance harness: time the BP decoder, gate the speedup.

Builds a pinned-seed batch of candidate key-schedule tables — a few
true AES schedules flipped at the configured bit-error rate plus a
majority of junk tables, the mix the adaptive ladder's decoded rung
actually sees — then decodes it three ways::

    python benchmarks/decode_harness.py                  # full record
    python benchmarks/decode_harness.py --smoke          # CI-sized pass
    python benchmarks/decode_harness.py --repeat 3       # median-of-3
    python benchmarks/decode_harness.py --min-speedup 5  # regression gate

* ``stages.decode`` — the live residual-scheduled decoder
  (:func:`repro.attack.decode.decode_schedules`) over the whole batch
  in one call, the shape :meth:`AesKeySearch._decode_batch` uses.
* ``stages.decode_sharded`` —
  :func:`repro.attack.decode_shard.decode_schedules_sharded` across
  thread workers; must match ``stages.decode`` byte-for-byte.
* ``baseline.decode`` — the frozen pre-rewrite dense decoder
  (:mod:`benchmarks.legacy_decode`) run per-table, sequentially, the
  way the seed's ``_decode_group`` loop ran it.

The identity gates are the point, not a side check: the converged set
(equivalently, the abstain set) and every recovered master key must
agree between the live decoder and the frozen reference, and the
sharded run must reproduce the unsharded tables exactly.  Abstained
tables are *expected* to differ byte-wise — the f32 fast path keeps
hard decisions, not message bits — which is why the gate compares
decisions and keys, not raw posterior dumps.

With ``--min-speedup X`` the harness exits non-zero when the decode
speedup over the frozen reference drops below ``X`` or any identity
gate fails; CI runs ``--smoke --min-speedup 3``.  The committed
``BENCH_decode.json`` is the full-sized record.  See
``docs/performance.md`` §5 for how to read the numbers.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_REPO_ROOT / "src"), str(_REPO_ROOT)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.attack.decode import (  # noqa: E402
    ChannelModel,
    DecodeResult,
    decode_schedules,
)
from repro.attack.decode_shard import decode_schedules_sharded  # noqa: E402
from repro.crypto.aes import expand_key  # noqa: E402

from benchmarks.legacy_decode import legacy_decode_schedules  # noqa: E402

#: Schema tag written into (and required from) every BENCH_decode.json.
BENCH_SCHEMA = "bench-decode/v1"
#: Required fields of every stage record.
STAGE_FIELDS = ("wall_s", "tables_per_s", "sweeps", "converged", "abstained",
                "workers")
#: Stages a complete record must report.
REQUIRED_STAGES = ("decode",)

#: Pinned defaults — change them and historical records stop comparing.
DEFAULT_SEED = 11
DEFAULT_BIT_ERROR_RATE = 0.040
DEFAULT_KEY_BITS = 256
DEFAULT_MAX_ITERS = 72


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the harness schema."""
    if record.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"schema must be {BENCH_SCHEMA!r}, got {record.get('schema')!r}"
        )
    config = record.get("config")
    if not isinstance(config, dict):
        raise ValueError("missing config object")
    for field in ("key_bits", "batch", "n_true", "seed", "bit_error_rate",
                  "max_iters"):
        if field not in config:
            raise ValueError(f"config lacks {field!r}")

    def check_stages(stages: object, where: str) -> None:
        if not isinstance(stages, dict):
            raise ValueError(f"{where} must be an object of stage records")
        for name in REQUIRED_STAGES:
            if name not in stages:
                raise ValueError(f"{where} lacks stage {name!r}")
        for name, stage in stages.items():
            if not isinstance(stage, dict):
                raise ValueError(f"{where}[{name}] must be an object")
            for field in STAGE_FIELDS:
                if field not in stage:
                    raise ValueError(f"{where}[{name}] lacks {field!r}")
            if not float(stage["wall_s"]) >= 0.0:
                raise ValueError(f"{where}[{name}].wall_s must be >= 0")
            if not float(stage["tables_per_s"]) >= 0.0:
                raise ValueError(f"{where}[{name}].tables_per_s must be >= 0")
            if int(stage["sweeps"]) < 0:
                raise ValueError(f"{where}[{name}].sweeps must be >= 0")
            if int(stage["converged"]) < 0 or int(stage["abstained"]) < 0:
                raise ValueError(
                    f"{where}[{name}] has negative converged/abstained"
                )
            if int(stage["workers"]) < 1:
                raise ValueError(f"{where}[{name}].workers must be >= 1")

    check_stages(record.get("stages"), "stages")
    if record.get("baseline") is not None:
        check_stages(record["baseline"], "baseline")
        speedups = record.get("speedup_vs_baseline")
        if not isinstance(speedups, dict) or "decode" not in speedups:
            raise ValueError("baseline present but speedup_vs_baseline incomplete")
        if not isinstance(record.get("identical_keys"), bool):
            raise ValueError("baseline present but identical_keys missing")
        if not isinstance(record.get("identical_abstains"), bool):
            raise ValueError("baseline present but identical_abstains missing")


def build_workload(
    key_bits: int, n_true: int, n_junk: int, bit_error_rate: float, seed: int
) -> tuple[np.ndarray, list[bytes]]:
    """True schedules flipped at the BER, padded with junk tables.

    Returns the observed table batch (true tables first) and the planted
    master keys, so the identity gate can also assert the decoders
    recover what was actually planted.
    """
    rng = np.random.default_rng(seed)
    key_len = key_bits // 8
    tables: list[np.ndarray] = []
    masters: list[bytes] = []
    for _ in range(n_true):
        master = rng.bytes(key_len)
        schedule = np.frombuffer(expand_key(master), dtype=np.uint8).copy()
        bits = np.unpackbits(schedule, bitorder="little")
        flips = rng.random(bits.size) < bit_error_rate
        noisy = np.packbits(bits ^ flips, bitorder="little")
        tables.append(noisy)
        masters.append(master)
    n_vars = tables[0].size
    for _ in range(n_junk):
        tables.append(rng.integers(0, 256, n_vars, dtype=np.uint8))
    return np.stack(tables), masters


def _recovered_keys(result: DecodeResult, key_bits: int) -> dict[int, bytes]:
    """Master keys read off the converged tables, by batch index."""
    key_len = key_bits // 8
    return {
        int(i): bytes(result.tables[i, :key_len])
        for i in np.flatnonzero(result.converged)
    }


def _stage(
    wall_s: float,
    result: DecodeResult,
    workers: int,
    samples: list[float] | None = None,
    **extra: object,
) -> dict:
    batch = result.tables.shape[0]
    record = {
        "wall_s": wall_s,
        "tables_per_s": (batch / wall_s) if wall_s > 0 else 0.0,
        "sweeps": int(result.table_iterations.sum())
        if result.table_iterations is not None
        else int(result.iterations) * batch,
        "converged": int(result.converged.sum()),
        "abstained": int(batch - result.converged.sum()),
        "workers": workers,
    }
    if samples is not None and len(samples) > 1:
        record["wall_s_samples"] = samples
    record.update(extra)
    return record


def run_benchmark(
    key_bits: int = DEFAULT_KEY_BITS,
    n_true: int = 4,
    n_junk: int = 28,
    bit_error_rate: float = DEFAULT_BIT_ERROR_RATE,
    seed: int = DEFAULT_SEED,
    max_iters: int = DEFAULT_MAX_ITERS,
    workers: int = 2,
    with_baseline: bool = True,
    smoke: bool = False,
    repeat: int = 1,
) -> dict:
    """Measure the decode stages on one pinned workload; return the record.

    ``repeat`` reruns the live-decoder measurements that many times and
    records the median; the frozen reference runs once — it is ~N×
    slower and not the thing whose noise we are smoothing.
    """
    observed, masters = build_workload(
        key_bits, n_true, n_junk, bit_error_rate, seed
    )
    batch = observed.shape[0]
    channel = ChannelModel.symmetric(bit_error_rate)
    print(
        f"[decode-harness] {batch} tables (AES-{key_bits}, {n_true} true, "
        f"ber={bit_error_rate}, seed={seed})"
    )

    decode_samples: list[float] = []
    sharded_samples: list[float] = []
    fast = sharded = None
    for rep in range(repeat):
        start = time.perf_counter()
        fast = decode_schedules(
            observed, key_bits, channel, max_iters=max_iters
        )
        decode_samples.append(time.perf_counter() - start)

        start = time.perf_counter()
        sharded = decode_schedules_sharded(
            observed, key_bits, channel, max_iters=max_iters, workers=workers
        )
        sharded_samples.append(time.perf_counter() - start)
        print(
            f"[decode-harness] rep {rep + 1}/{repeat}: decode "
            f"{decode_samples[-1]:.2f}s ({int(fast.converged.sum())} converged"
            f"/{batch}), sharded {sharded_samples[-1]:.2f}s "
            f"({workers} workers)"
        )

    sharded_identical = bool(
        np.array_equal(fast.tables, sharded.tables)
        and np.array_equal(fast.converged, sharded.converged)
        and np.array_equal(fast.table_iterations, sharded.table_iterations)
    )
    if not sharded_identical:
        raise SystemExit(
            "[decode-harness] FATAL: sharded decode diverged from the "
            "unsharded batch"
        )
    fast_keys = _recovered_keys(fast, key_bits)
    planted = set(masters)
    if not planted <= set(fast_keys.values()):
        raise SystemExit(
            "[decode-harness] FATAL: decode failed to recover every "
            "planted master key"
        )

    record: dict = {
        "schema": BENCH_SCHEMA,
        "config": {
            "key_bits": key_bits,
            "batch": batch,
            "n_true": n_true,
            "seed": seed,
            "bit_error_rate": bit_error_rate,
            "max_iters": max_iters,
            "smoke": smoke,
            "repeat": repeat,
        },
        "stages": {
            "decode": _stage(
                statistics.median(decode_samples), fast, 1,
                samples=decode_samples,
            ),
            "decode_sharded": _stage(
                statistics.median(sharded_samples), sharded, workers,
                samples=sharded_samples,
            ),
        },
        "baseline": None,
        "sharded_identical": sharded_identical,
    }

    if with_baseline:
        # Per-table and sequential: the shape the seed's decode loop had
        # before batching, which is what the decoded-rung wall clock was
        # actually made of.
        start = time.perf_counter()
        parts = [
            legacy_decode_schedules(
                observed[i], key_bits, channel, max_iters=max_iters
            )
            for i in range(batch)
        ]
        legacy_s = time.perf_counter() - start
        legacy_converged = np.array([bool(p.converged[0]) for p in parts])
        legacy_tables = np.stack([p.tables[0] for p in parts])
        legacy_sweeps = sum(int(p.iterations) for p in parts)
        legacy_keys = {
            int(i): bytes(legacy_tables[i, : key_bits // 8])
            for i in np.flatnonzero(legacy_converged)
        }
        identical_abstains = bool(
            np.array_equal(fast.converged, legacy_converged)
        )
        identical_keys = identical_abstains and fast_keys == legacy_keys and all(
            np.array_equal(fast.tables[i], legacy_tables[i])
            for i in fast_keys
        )
        legacy = DecodeResult(
            tables=legacy_tables,
            converged=legacy_converged,
            iterations=max(int(p.iterations) for p in parts),
            syndrome_weight=np.concatenate([p.syndrome_weight for p in parts]),
            posterior_entropy=np.concatenate(
                [p.posterior_entropy for p in parts]
            ),
            certainty=np.concatenate([p.certainty for p in parts]),
        )
        record["baseline"] = {
            "decode": _stage(legacy_s, legacy, 1, sweeps=legacy_sweeps),
        }
        record["identical_keys"] = identical_keys
        record["identical_abstains"] = identical_abstains
        record["speedup_vs_baseline"] = {
            "decode": (legacy_s / record["stages"]["decode"]["wall_s"])
            if record["stages"]["decode"]["wall_s"] > 0
            else float("inf"),
            "decode_sharded": (
                legacy_s / record["stages"]["decode_sharded"]["wall_s"]
            )
            if record["stages"]["decode_sharded"]["wall_s"] > 0
            else float("inf"),
        }
        speedup = record["speedup_vs_baseline"]["decode"]
        print(
            f"[decode-harness] baseline {legacy_s:.2f}s "
            f"({legacy_sweeps} sweeps); speedup {speedup:.2f}x; "
            f"identical keys: {identical_keys}, "
            f"identical abstains: {identical_abstains}"
        )
        if not identical_keys or not identical_abstains:
            raise SystemExit(
                "[decode-harness] FATAL: live decoder and frozen reference "
                "disagree on recovered keys or abstain decisions"
            )
    return record


def main(argv: list[str] | None = None) -> int:
    # allow_abbrev: a typo'd --smok must not silently run (and overwrite
    # the output record) as --smoke.
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument("--key-bits", type=int, default=DEFAULT_KEY_BITS,
                        choices=(128, 192, 256))
    parser.add_argument("--n-true", type=int, default=4,
                        help="planted true schedules (default 4)")
    parser.add_argument("--n-junk", type=int, default=28,
                        help="junk tables padding the batch (default 28)")
    parser.add_argument("--bit-error-rate", type=float,
                        default=DEFAULT_BIT_ERROR_RATE)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--max-iters", type=int, default=DEFAULT_MAX_ITERS)
    parser.add_argument("--workers", type=int, default=2,
                        help="thread shards for the sharded stage (default 2)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the frozen-reference baseline run")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 8-table batch, baseline included")
    parser.add_argument("--repeat", type=int, default=1,
                        help="measure the live decoder N times, record "
                             "medians (default 1)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="regression gate: exit non-zero unless the "
                             "decode speedup vs the frozen reference reaches "
                             "this floor with identical keys and abstains")
    parser.add_argument("--output", default="BENCH_decode.json",
                        help="where to write the record (default "
                             "BENCH_decode.json)")
    args = parser.parse_args(argv)
    if args.n_true < 1:
        parser.error("--n-true must be at least 1")
    if args.n_junk < 0:
        parser.error("--n-junk must be >= 0")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")
    if args.min_speedup is not None and args.no_baseline:
        parser.error("--min-speedup needs the baseline (drop --no-baseline)")

    n_true = 2 if args.smoke else args.n_true
    n_junk = 6 if args.smoke else args.n_junk
    record = run_benchmark(
        key_bits=args.key_bits,
        n_true=n_true,
        n_junk=n_junk,
        bit_error_rate=args.bit_error_rate,
        seed=args.seed,
        max_iters=args.max_iters,
        workers=args.workers,
        with_baseline=not args.no_baseline,
        smoke=args.smoke,
        repeat=args.repeat,
    )
    validate_bench_record(record)
    Path(args.output).write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(f"[decode-harness] wrote {args.output}")

    if args.min_speedup is not None:
        speedup = record["speedup_vs_baseline"]["decode"]
        if speedup < args.min_speedup:
            print(
                f"[decode-harness] GATE FAILED: decode speedup "
                f"{speedup:.2f}x (floor {args.min_speedup:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"[decode-harness] gate passed: {speedup:.2f}x >= "
            f"{args.min_speedup:.2f}x, identical keys and abstains"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
